/**
 * @file
 * Tests for the named geometry presets and everything they lean on:
 * the per-standard timing tables (DDR4/DDR5/HBM2 selected by the
 * explicit Standard enum), the preset registry itself, the
 * controller's tRRD_S/tRRD_L/tFAW and refresh behavior on shapes
 * where banks-per-rank != 16 and rows-per-bank != 128K, the rounded
 * CPU tick, and VulnProfile::resampledTo round-trips onto the preset
 * bank x row spaces.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/svard.h"
#include "core/vuln_profile.h"
#include "defense/defense.h"
#include "dram/module_spec.h"
#include "dram/subarray.h"
#include "dram/timing.h"
#include "fault/vuln_model.h"
#include "sim/addrmap.h"
#include "sim/controller.h"
#include "sim/presets.h"

namespace svard {
namespace {

// -----------------------------------------------------------------
// Per-standard timing tables
// -----------------------------------------------------------------

TEST(Timing, UnknownDdr4RateThrowsInsteadOfFallingBackTo3200)
{
    // The old "warning-free default" hid typos like 2667 behind a
    // silently simulated DDR4-3200 system.
    EXPECT_THROW(dram::ddr4Timing(2667), std::invalid_argument);
    EXPECT_THROW(dram::ddr4Timing(0), std::invalid_argument);
    EXPECT_THROW(dram::ddr4Timing(4800), std::invalid_argument);
    try {
        dram::ddr4Timing(3199);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        // The message lists the known bins to aid correction.
        EXPECT_NE(std::string(e.what()).find("3200"),
                  std::string::npos);
    }
}

TEST(Timing, Ddr5AndHbm2TablesAreInternallyConsistent)
{
    for (const dram::TimingParams &t :
         {dram::ddr5Timing(4800), dram::hbm2Timing(2000),
          dram::ddr4Timing(3200)}) {
        EXPECT_GT(t.tCK, 0);
        EXPECT_EQ(t.tRC, t.tRAS + t.tRP);
        EXPECT_GE(t.tRRD_L, t.tRRD_S); // same-group is never looser
        EXPECT_GE(t.tFAW, 4 * t.tRRD_S);
        EXPECT_GT(t.tREFW, 100 * t.tREFI);
        EXPECT_GT(t.tRFC, t.tRC);
    }
    // DDR5 halves the refresh interval; HBM2 runs a 1 ns clock.
    EXPECT_LT(dram::ddr5Timing(4800).tREFI,
              dram::ddr4Timing(3200).tREFI);
    EXPECT_EQ(dram::hbm2Timing(2000).tCK, 1000);
    EXPECT_THROW(dram::ddr5Timing(3200), std::invalid_argument);
    EXPECT_THROW(dram::hbm2Timing(3200), std::invalid_argument);
}

TEST(Timing, TimingForDispatchesOnTheStandardEnum)
{
    // Selection is by the explicit enum: the same MT/s value yields
    // the standard's own table, never an overloaded DDR4 bin.
    EXPECT_EQ(dram::timingFor(dram::Standard::DDR5, 4800).tCK,
              dram::ddr5Timing(4800).tCK);
    EXPECT_EQ(dram::timingFor(dram::Standard::HBM2, 2000).tRAS,
              dram::hbm2Timing(2000).tRAS);
    EXPECT_EQ(dram::timingFor(dram::Standard::DDR4, 2400).tCL,
              dram::ddr4Timing(2400).tCL);
    EXPECT_THROW(dram::timingFor(dram::Standard::DDR4, 4800),
                 std::invalid_argument);
    EXPECT_STREQ(dram::standardName(dram::Standard::DDR5), "DDR5");
}

// -----------------------------------------------------------------
// Preset registry
// -----------------------------------------------------------------

TEST(Presets, RegistryResolvesFullConfigs)
{
    const auto &names = sim::presets::names();
    ASSERT_GE(names.size(), 3u);
    for (const auto &name : names) {
        EXPECT_TRUE(sim::presets::contains(name));
        const sim::SimConfig cfg = sim::presets::get(name);
        EXPECT_EQ(cfg.geometry, name);
        EXPECT_GT(cfg.banksPerRank(), 0u);
        EXPECT_GT(cfg.rowsPerBank, 0u);
        EXPECT_GT(cfg.timing.tCK, 0);
    }
    EXPECT_FALSE(sim::presets::contains("ddr6-vaporware"));
    try {
        sim::presets::get("ddr6-vaporware");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("ddr4-table4"),
                  std::string::npos);
    }
}

TEST(Presets, Ddr4Table4IsTheDefaultSimConfig)
{
    const sim::SimConfig preset = sim::presets::get("ddr4-table4");
    const sim::SimConfig def;
    EXPECT_EQ(preset.geometry, def.geometry);
    EXPECT_EQ(preset.standard, dram::Standard::DDR4);
    EXPECT_EQ(preset.channels, def.channels);
    EXPECT_EQ(preset.banksPerRank(), 16u);
    EXPECT_EQ(preset.rowsPerBank, 128u * 1024u);
    EXPECT_EQ(preset.timing.tCK, def.timing.tCK);
}

TEST(Presets, Ddr5AndHbm2ShapesBreakTheTable4Assumptions)
{
    const sim::SimConfig ddr5 = sim::presets::get("ddr5-4800-32bank");
    EXPECT_EQ(ddr5.standard, dram::Standard::DDR5);
    EXPECT_EQ(ddr5.banksPerRank(), 32u);   // != 16
    EXPECT_EQ(ddr5.rowsPerBank, 64u * 1024u); // != 128K
    EXPECT_EQ(ddr5.timing.tREFI, dram::ddr5Timing(4800).tREFI);

    const sim::SimConfig hbm2 = sim::presets::get("hbm2-pc-16ch");
    EXPECT_EQ(hbm2.standard, dram::Standard::HBM2);
    EXPECT_EQ(hbm2.channels, 16u);
    EXPECT_EQ(hbm2.ranks, 1u);
    EXPECT_EQ(hbm2.banksPerRank(), 16u);
    EXPECT_EQ(hbm2.rowsPerBank, 16u * 1024u);
    EXPECT_EQ(hbm2.rowBytes, 2048u);
    // 2 KiB rows still hold whole MOP runs.
    EXPECT_EQ(hbm2.blocksPerRow() % hbm2.mopWidth, 0u);
}

TEST(Presets, MopRowStrideAdvancesExactlyOneRowOnEveryPreset)
{
    // The adversarial trace generators lean on rowStrideBytes being
    // the mapper's real next-row distance; assert the coupling per
    // preset so a MopMapper layout change cannot silently strand
    // them on a stale stride.
    for (const auto &name : sim::presets::names()) {
        const sim::SimConfig cfg = sim::presets::get(name);
        const sim::MopMapper mapper(cfg);
        const uint64_t stride = sim::MopMapper::rowStrideBytes(cfg);
        for (uint64_t base : {uint64_t{0}, 3 * stride, 17 * stride}) {
            const dram::Address a = mapper.map(base);
            const dram::Address b = mapper.map(base + stride);
            EXPECT_EQ(b.row, a.row + 1) << name;
            EXPECT_EQ(b.channel, a.channel) << name;
            EXPECT_EQ(b.rank, a.rank) << name;
            EXPECT_EQ(b.bankGroup, a.bankGroup) << name;
            EXPECT_EQ(b.bank, a.bank) << name;
            EXPECT_EQ(b.column, a.column) << name;
        }
    }
}

// -----------------------------------------------------------------
// Rounded CPU tick
// -----------------------------------------------------------------

TEST(SimConfig, CpuTickRoundsToNearestInsteadOfTruncating)
{
    sim::SimConfig cfg;
    cfg.cpuGhz = 3.2; // 312.5 ps: truncation said 312
    EXPECT_EQ(cfg.cpuTick(), 313);
    cfg.cpuGhz = 2.0;
    EXPECT_EQ(cfg.cpuTick(), 500);
    cfg.cpuGhz = 3.0; // 333.33 ps rounds down
    EXPECT_EQ(cfg.cpuTick(), 333);
    cfg.cpuGhz = 4.2; // 238.09 ps
    EXPECT_EQ(cfg.cpuTick(), 238);
}

// -----------------------------------------------------------------
// Controller timing invariants on non-DDR4 shapes
// -----------------------------------------------------------------

/** Defense that records every demand ACT the controller issues
 *  (onActivate is called at the exact issue time with the flat bank),
 *  giving the tests the ACT timeline the stats do not expose. */
class ActRecorder : public defense::Defense
{
  public:
    explicit ActRecorder(uint32_t rows_per_bank)
        : Defense(std::make_shared<core::UniformThreshold>(
              1e18, rows_per_bank))
    {}

    const char *name() const override { return "ActRecorder"; }

    void
    onActivate(uint32_t bank, uint32_t row, dram::Tick now,
               std::vector<defense::PreventiveAction> &) override
    {
        (void)row;
        acts.push_back({bank, now});
    }

    struct Act
    {
        uint32_t flatBank;
        dram::Tick time;
    };
    std::vector<Act> acts;
};

/** Drive `n` single-read row misses spread over the banks of rank 0
 *  (every request targets a fresh row, so each one costs an ACT). */
void
driveRowMisses(sim::MemController &mc, const sim::SimConfig &cfg,
               uint32_t n, dram::Tick *clock)
{
    for (uint32_t i = 0; i < n; ++i) {
        sim::MemRequest req;
        req.core = 0;
        req.write = false;
        req.addr.rank = 0;
        req.addr.bankGroup = i % cfg.bankGroups;
        req.addr.bank = (i / cfg.bankGroups) % cfg.banksPerGroup;
        req.addr.row = (i * 37) % cfg.rowsPerBank;
        req.addr.column = 0;
        req.arrive = *clock;
        while (!mc.enqueue(req))
            *clock = mc.run(*clock + 500 * dram::kPsPerNs);
    }
    while (!mc.idle())
        *clock = mc.run(*clock + 1000 * dram::kPsPerNs);
}

/** Check tRRD_S / tRRD_L / tFAW over a recorded ACT timeline. */
void
expectActTimingRespected(const std::vector<ActRecorder::Act> &acts,
                         const sim::SimConfig &cfg)
{
    const auto &t = cfg.timing;
    const uint32_t banks_per_rank = cfg.banksPerRank();
    // Group per rank (recorder order is issue order, so times are
    // monotone within the stream).
    std::map<uint32_t, std::vector<std::pair<dram::Tick, uint32_t>>>
        per_rank; // rank -> [(time, bank group)]
    for (const auto &a : acts)
        per_rank[a.flatBank / banks_per_rank].push_back(
            {a.time, (a.flatBank % banks_per_rank) /
                         cfg.banksPerGroup});
    ASSERT_FALSE(per_rank.empty());
    for (const auto &[rank, seq] : per_rank) {
        for (size_t i = 1; i < seq.size(); ++i)
            EXPECT_GE(seq[i].first - seq[i - 1].first, t.tRRD_S)
                << "tRRD_S violated in rank " << rank << " at ACT "
                << i;
        for (size_t i = 4; i < seq.size(); ++i)
            EXPECT_GE(seq[i].first - seq[i - 4].first, t.tFAW)
                << "tFAW violated in rank " << rank << " at ACT " << i;
        // Same-bank-group consecutive ACTs must honor tRRD_L.
        std::map<uint32_t, dram::Tick> last_bg;
        for (const auto &[time, bg] : seq) {
            const auto it = last_bg.find(bg);
            if (it != last_bg.end())
                EXPECT_GE(time - it->second, t.tRRD_L)
                    << "tRRD_L violated in rank " << rank
                    << " bank group " << bg;
            last_bg[bg] = time;
        }
    }
}

class ControllerShapeP
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ControllerShapeP, ActStreamHonorsTrrdAndTfaw)
{
    const sim::SimConfig cfg = sim::presets::get(GetParam());
    ActRecorder recorder(cfg.rowsPerBank);
    sim::MemController mc(cfg, &recorder, nullptr);
    dram::Tick clock = 0;
    driveRowMisses(mc, cfg, 6 * cfg.banksPerRank(), &clock);
    // Every bank of rank 0 was exercised under its real flat index
    // (no mod-16 aliasing on the 32-bank DDR5 shape).
    std::vector<uint32_t> banks_seen;
    for (const auto &a : recorder.acts)
        banks_seen.push_back(a.flatBank);
    std::sort(banks_seen.begin(), banks_seen.end());
    banks_seen.erase(
        std::unique(banks_seen.begin(), banks_seen.end()),
        banks_seen.end());
    EXPECT_EQ(banks_seen.size(), cfg.banksPerRank());
    EXPECT_LT(banks_seen.back(), cfg.banksPerRank());
    ASSERT_GE(recorder.acts.size(), 6u * cfg.banksPerRank());
    expectActTimingRespected(recorder.acts, cfg);
}

INSTANTIATE_TEST_SUITE_P(Presets, ControllerShapeP,
                         ::testing::Values("ddr4-table4",
                                           "ddr5-4800-32bank",
                                           "hbm2-pc-16ch"));

TEST(ControllerShape, SameBankGroupPairsWaitTrrdLNotJustTrrdS)
{
    // Hammer one bank group only: with 4 banks per group and fresh
    // rows per request, consecutive ACTs always share the group, so
    // every gap must clear tRRD_L (strictly larger than tRRD_S on
    // all three standards — the pre-fix controller spaced these at
    // tRRD_S).
    const sim::SimConfig cfg = sim::presets::get("ddr5-4800-32bank");
    ASSERT_GT(cfg.timing.tRRD_L, cfg.timing.tRRD_S);
    ActRecorder recorder(cfg.rowsPerBank);
    sim::MemController mc(cfg, &recorder, nullptr);
    dram::Tick clock = 0;
    for (uint32_t i = 0; i < 64; ++i) {
        sim::MemRequest req;
        req.core = 0;
        req.write = false;
        req.addr.rank = 0;
        req.addr.bankGroup = 2;
        req.addr.bank = i % cfg.banksPerGroup;
        req.addr.row = 1 + i * 53;
        req.addr.column = 0;
        req.arrive = clock;
        while (!mc.enqueue(req))
            clock = mc.run(clock + 500 * dram::kPsPerNs);
    }
    while (!mc.idle())
        clock = mc.run(clock + 1000 * dram::kPsPerNs);
    ASSERT_GE(recorder.acts.size(), 64u);
    for (size_t i = 1; i < recorder.acts.size(); ++i)
        ASSERT_GE(recorder.acts[i].time - recorder.acts[i - 1].time,
                  cfg.timing.tRRD_L)
            << "ACT pair " << i;
}

TEST(ControllerShape, RefreshCadenceFollowsThePresetTrefi)
{
    // Equal simulated spans under DDR4 (tREFI 7.8us) and DDR5
    // (3.9us) must show the DDR5 controller refreshing about twice
    // as often per rank.
    auto refreshes_per_rank = [](const sim::SimConfig &cfg) {
        ActRecorder recorder(cfg.rowsPerBank);
        sim::MemController mc(cfg, &recorder, nullptr);
        dram::Tick clock = 0;
        const dram::Tick span = 40 * cfg.timing.tREFI;
        uint32_t i = 0;
        // Trickle one row miss per microsecond so the controller
        // keeps simulating (refreshes are processed while it runs).
        while (clock < span) {
            sim::MemRequest req;
            req.core = 0;
            req.write = false;
            req.addr.rank = 0;
            req.addr.bankGroup = i % cfg.bankGroups;
            req.addr.bank = 0;
            req.addr.row = 1 + (i * 101) % cfg.rowsPerBank;
            req.addr.column = 0;
            req.arrive = clock;
            ++i;
            mc.enqueue(req);
            clock = mc.run(clock + dram::kPsPerUs);
        }
        return static_cast<double>(mc.stats().refreshes) /
               static_cast<double>(cfg.ranks);
    };

    const sim::SimConfig ddr4 = sim::presets::get("ddr4-table4");
    const sim::SimConfig ddr5 = sim::presets::get("ddr5-4800-32bank");
    const double r4 = refreshes_per_rank(ddr4);
    const double r5 = refreshes_per_rank(ddr5);
    // 40 tREFI periods each: expect ~40 refreshes per rank.
    EXPECT_NEAR(r4, 40.0, 4.0);
    EXPECT_NEAR(r5, 40.0, 4.0);
}

// -----------------------------------------------------------------
// Profile resampling onto preset spaces
// -----------------------------------------------------------------

std::shared_ptr<core::VulnProfile>
s0Profile()
{
    static std::shared_ptr<core::VulnProfile> prof = [] {
        const auto &spec = dram::moduleByLabel("S0");
        auto sa = std::make_shared<dram::SubarrayMap>(spec);
        fault::VulnerabilityModel model(spec, sa);
        return std::make_shared<core::VulnProfile>(
            core::VulnProfile::fromModel(model));
    }();
    return prof;
}

TEST(Resample, PresetSpacesGetFullCoverageAndPreservedBounds)
{
    const auto base = s0Profile();
    for (const auto &name : sim::presets::names()) {
        const sim::SimConfig cfg = sim::presets::get(name);
        const core::VulnProfile p =
            base->resampledTo(cfg.banksPerRank(), cfg.rowsPerBank);
        EXPECT_EQ(p.banks(), cfg.banksPerRank()) << name;
        EXPECT_EQ(p.rowsPerBank(), cfg.rowsPerBank) << name;
        // Bin bounds are carried over unchanged; thresholds stay
        // within the source profile's range.
        EXPECT_EQ(p.binBounds(), base->binBounds()) << name;
        EXPECT_GE(p.minThreshold(), base->minThreshold()) << name;
        EXPECT_LE(p.maxThreshold(), base->maxThreshold()) << name;
    }
}

TEST(Resample, RoundTripsExactlyAcrossPresetShapesWithIntegerRatio)
{
    // Start from the HBM2 shape (the smallest), expand onto the
    // DDR4 and DDR5 preset spaces, and come back: with integer
    // row/bank ratios the round-trip must reproduce every bin.
    const sim::SimConfig hbm2 = sim::presets::get("hbm2-pc-16ch");
    const core::VulnProfile small = s0Profile()->resampledTo(
        hbm2.banksPerRank(), hbm2.rowsPerBank);
    for (const char *target : {"ddr4-table4", "ddr5-4800-32bank"}) {
        const sim::SimConfig cfg = sim::presets::get(target);
        const core::VulnProfile big = small.resampledTo(
            cfg.banksPerRank(), cfg.rowsPerBank);
        const core::VulnProfile back = big.resampledTo(
            small.banks(), small.rowsPerBank());
        ASSERT_EQ(back.banks(), small.banks());
        ASSERT_EQ(back.rowsPerBank(), small.rowsPerBank());
        for (uint32_t b = 0; b < small.banks(); ++b)
            for (uint32_t r = 0; r < small.rowsPerBank(); ++r)
                ASSERT_EQ(back.binOf(b, r), small.binOf(b, r))
                    << target << " bank " << b << " row " << r;
    }
}

TEST(Resample, ProportionalSpatialStructureOnPresetSpaces)
{
    // Each target row inherits the bin of its proportionally-located
    // source row — spot-check the contract the engine relies on when
    // it maps module profiles onto preset geometries.
    const auto base = s0Profile();
    const sim::SimConfig ddr5 = sim::presets::get("ddr5-4800-32bank");
    const core::VulnProfile p =
        base->resampledTo(ddr5.banksPerRank(), ddr5.rowsPerBank);
    for (uint32_t b : {0u, 15u, 16u, 31u}) {
        const uint32_t src_bank = b % base->banks();
        for (uint32_t r : {0u, 1u, 1000u, ddr5.rowsPerBank - 1}) {
            const uint32_t src_row = static_cast<uint32_t>(
                (static_cast<uint64_t>(r) * base->rowsPerBank()) /
                ddr5.rowsPerBank);
            EXPECT_EQ(p.binOf(b, r), base->binOf(src_bank, src_row));
        }
    }
}

} // namespace
} // namespace svard
