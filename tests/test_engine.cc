/**
 * @file
 * Tests for the orchestration layer introduced with the experiment
 * engine: channel-interleaved address mapping, the multi-channel
 * SimEngine (per-channel controllers + aggregated stats), and the
 * sharded ExperimentRunner's determinism guarantee — identical
 * per-cell results for any thread count.
 */
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "engine/runner.h"
#include "sim/engine.h"
#include "sim/system.h"

namespace svard {
namespace {

// -----------------------------------------------------------------
// Channel-interleaving address mapping
// -----------------------------------------------------------------

TEST(ChannelMap, TwoChannelFieldsWithinBoundsAndCovered)
{
    sim::SimConfig cfg;
    cfg.channels = 2;
    sim::MopMapper mapper(cfg);
    Rng rng(17);
    std::set<uint32_t> channels;
    for (int i = 0; i < 20000; ++i) {
        const auto a = mapper.map(rng.next() & ((1ULL << 38) - 1));
        EXPECT_LT(a.channel, cfg.channels);
        EXPECT_LT(a.rank, cfg.ranks);
        EXPECT_LT(a.bankGroup, cfg.bankGroups);
        EXPECT_LT(a.bank, cfg.banksPerGroup);
        EXPECT_LT(a.row, cfg.rowsPerBank);
        channels.insert(a.channel);
    }
    EXPECT_EQ(channels.size(), 2u);
}

TEST(ChannelMap, ConsecutiveMopRunsAlternateChannels)
{
    sim::SimConfig cfg;
    cfg.channels = 2;
    sim::MopMapper mapper(cfg);
    const uint64_t base = 1ULL << 30;
    const auto a0 = mapper.map(base);
    // Within one MOP run: same channel.
    for (uint64_t b = 1; b < cfg.mopWidth; ++b)
        EXPECT_EQ(mapper.map(base + b * 64).channel, a0.channel);
    // The next run lands on the other channel.
    EXPECT_NE(mapper.map(base + cfg.mopWidth * 64).channel,
              a0.channel);
}

TEST(ChannelMap, SingleChannelMappingUnchangedFromSeed)
{
    // channels == 1 must reproduce the classic MOP decomposition the
    // rest of the tests (and the paper's Table 4 system) rely on.
    sim::SimConfig cfg;
    sim::MopMapper mapper(cfg);
    const auto a0 = mapper.map(0);
    const auto a1 = mapper.map(256 * 1024);
    EXPECT_EQ(a1.row, a0.row + 1);
    EXPECT_EQ(a0.channel, 0u);
    EXPECT_EQ(a1.channel, 0u);
}

// -----------------------------------------------------------------
// Multi-channel SimEngine
// -----------------------------------------------------------------

/** Deterministic request stream mapped through a config's mapper. */
std::vector<sim::MemRequest>
requestStream(const sim::SimConfig &cfg, size_t n, uint64_t seed)
{
    sim::MopMapper mapper(cfg);
    Rng rng(seed);
    std::vector<sim::MemRequest> reqs;
    for (size_t i = 0; i < n; ++i) {
        sim::MemRequest r;
        r.write = i % 5 == 0;
        r.addr = mapper.map(rng.next() & ((1ULL << 34) - 1));
        r.token = i;
        reqs.push_back(r);
    }
    return reqs;
}

TEST(SimEngine, TwoChannelsMatchTwoIndependentOneChannelRuns)
{
    sim::SimConfig cfg;
    cfg.channels = 2;
    const auto reqs = requestStream(cfg, 3000, 5);

    // Engine path: route through the 2-channel SimEngine.
    uint64_t engine_completed = 0;
    sim::SimEngine eng(cfg, nullptr,
                       [&](const sim::MemRequest &, dram::Tick) {
                           ++engine_completed;
                       });
    // Reference path: two bare controllers driven on the identical
    // lockstep schedule (a 2-channel engine must behave exactly like
    // two independent 1-channel controllers).
    uint64_t ref_completed = 0;
    sim::MemController ref0(cfg, nullptr,
                            [&](const sim::MemRequest &, dram::Tick) {
                                ++ref_completed;
                            });
    sim::MemController ref1(cfg, nullptr,
                            [&](const sim::MemRequest &, dram::Tick) {
                                ++ref_completed;
                            });

    const dram::Tick step = 10 * dram::kPsPerUs;
    dram::Tick t = 0;
    size_t i = 0;
    while (i < reqs.size() || !eng.idle() || !ref0.idle() ||
           !ref1.idle()) {
        // Batches small enough to never overflow a 64-entry queue.
        for (size_t b = 0; b < 24 && i < reqs.size(); ++b, ++i) {
            ASSERT_TRUE(eng.enqueue(reqs[i]));
            sim::MemController &ref =
                reqs[i].addr.channel == 0 ? ref0 : ref1;
            ASSERT_TRUE(ref.enqueue(reqs[i]));
        }
        t += step;
        eng.run(t);
        ref0.run(t);
        ref1.run(t);
    }

    const sim::ControllerStats agg = eng.stats();
    const sim::ControllerStats &s0 = ref0.stats();
    const sim::ControllerStats &s1 = ref1.stats();
    EXPECT_EQ(agg.reads, s0.reads + s1.reads);
    EXPECT_EQ(agg.writes, s0.writes + s1.writes);
    EXPECT_EQ(agg.activations, s0.activations + s1.activations);
    EXPECT_EQ(agg.rowHits, s0.rowHits + s1.rowHits);
    EXPECT_EQ(agg.rowConflicts, s0.rowConflicts + s1.rowConflicts);
    EXPECT_EQ(agg.refreshes, s0.refreshes + s1.refreshes);
    EXPECT_EQ(engine_completed, ref_completed);
    // Per-channel stats are the aggregate's exact decomposition.
    EXPECT_EQ(eng.channel(0).stats().reads, s0.reads);
    EXPECT_EQ(eng.channel(1).stats().reads, s1.reads);
    // All reads were actually serviced.
    uint64_t expected_reads = 0;
    for (const auto &r : reqs)
        expected_reads += r.write ? 0 : 1;
    EXPECT_EQ(agg.reads, expected_reads);
}

TEST(SimEngine, PerChannelDefensesAreIndependentInstances)
{
    sim::SimConfig cfg;
    cfg.channels = 2;
    auto provider = std::make_shared<core::UniformThreshold>(
        1024.0, cfg.rowsPerBank);
    sim::SimEngine eng(cfg, "para", provider, 9, nullptr);
    ASSERT_TRUE(eng.hasDefense());
    ASSERT_NE(eng.defenseOf(0), nullptr);
    ASSERT_NE(eng.defenseOf(1), nullptr);
    EXPECT_NE(eng.defenseOf(0), eng.defenseOf(1));
    // Geometry was threaded through the registry context.
    EXPECT_EQ(eng.defenseOf(0)->banksPerRank(), cfg.banksPerRank());
}

TEST(System, TwoChannelRunCompletesWithConsistentAggregates)
{
    sim::SimConfig cfg1;
    sim::SimConfig cfg2;
    cfg2.channels = 2;

    auto traces_for = [&](uint64_t seed) {
        std::vector<std::vector<sim::TraceEntry>> traces;
        for (uint32_t c = 0; c < 4; ++c)
            traces.push_back(sim::generateTrace(
                sim::benchmarkByName("ptrchase-hi"), 2500, seed,
                sim::coreTraceOffset(seed, c)));
        return traces;
    };

    sim::System sys2(cfg2, traces_for(7), 2500, nullptr);
    const auto res2 = sys2.run();
    sim::System sys1(cfg1, traces_for(7), 2500, nullptr);
    const auto res1 = sys1.run();

    // Same workload, same demand traffic up to the post-measurement
    // tail (cores replay their trace until the slowest finishes, so
    // totals are timing-dependent by a few percent).
    EXPECT_NEAR(static_cast<double>(res2.controller.reads),
                static_cast<double>(res1.controller.reads),
                0.05 * static_cast<double>(res1.controller.reads));
    EXPECT_NEAR(static_cast<double>(res2.controller.writes),
                static_cast<double>(res1.controller.writes),
                0.05 * static_cast<double>(res1.controller.writes));
    // Both channels carried traffic and sum to the aggregate.
    ASSERT_EQ(res2.perChannel.size(), 2u);
    EXPECT_GT(res2.perChannel[0].reads, 0u);
    EXPECT_GT(res2.perChannel[1].reads, 0u);
    EXPECT_EQ(res2.perChannel[0].reads + res2.perChannel[1].reads,
              res2.controller.reads);
    // Doubling the channels cannot slow a bandwidth-hungry mix down.
    double ipc1 = 0, ipc2 = 0;
    for (size_t c = 0; c < res1.ipc.size(); ++c) {
        ipc1 += res1.ipc[c];
        ipc2 += res2.ipc[c];
    }
    EXPECT_GE(ipc2, ipc1 * 0.98);
}

// -----------------------------------------------------------------
// Sharded experiment runner
// -----------------------------------------------------------------

engine::SweepSpec
smallSpec(unsigned threads)
{
    engine::SweepSpec spec;
    spec.config.cores = 4;
    spec.defenses = {"para", "hydra"};
    spec.thresholds = {128.0};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S3")};
    spec.mixes = sim::workloadMixes(2, spec.config.cores);
    spec.requestsPerCore = 1200;
    spec.threads = threads;
    return spec;
}

TEST(ExperimentRunner, FourThreadShardingReproducesSingleThreadExactly)
{
    engine::ExperimentRunner serial(smallSpec(1));
    engine::ExperimentRunner sharded(smallSpec(4));
    const auto &a = serial.run();
    const auto &b = sharded.run();
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), 2u * 1u * 2u * 2u); // defenses x thr x prov x mixes
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed) << i;
        EXPECT_EQ(a[i].defense, b[i].defense) << i;
        EXPECT_EQ(a[i].provider, b[i].provider) << i;
        // Identical per-cell seeds -> bit-identical simulations.
        EXPECT_DOUBLE_EQ(a[i].metrics.weightedSpeedup,
                         b[i].metrics.weightedSpeedup)
            << i;
        EXPECT_DOUBLE_EQ(a[i].metrics.harmonicSpeedup,
                         b[i].metrics.harmonicSpeedup)
            << i;
        EXPECT_DOUBLE_EQ(a[i].metrics.maxSlowdown,
                         b[i].metrics.maxSlowdown)
            << i;
        EXPECT_DOUBLE_EQ(a[i].normalized.weightedSpeedup,
                         b[i].normalized.weightedSpeedup)
            << i;
    }
    // Overhead ordering is reproduced identically: compare the mean
    // normalized weighted speedups defense by defense.
    const auto sa = serial.summarize();
    const auto sb = sharded.summarize();
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_DOUBLE_EQ(sa[i].meanNormalized.weightedSpeedup,
                         sb[i].meanNormalized.weightedSpeedup);
}

TEST(ExperimentRunner, CellsCarryMetadataAndSaneNormalization)
{
    engine::ExperimentRunner runner(smallSpec(0));
    const auto &cells = runner.run();
    for (const auto &c : cells) {
        EXPECT_GT(c.metrics.weightedSpeedup, 0.0);
        EXPECT_GT(c.normalized.weightedSpeedup, 0.0);
        // A defense never speeds the mix up by more than noise.
        EXPECT_LT(c.normalized.weightedSpeedup, 1.1);
        EXPECT_FALSE(c.mix.empty());
    }
    const auto table = runner.cellTable();
    EXPECT_EQ(table.rows(), cells.size());
}

TEST(ExperimentRunner, GeometryIsASweepAxis)
{
    engine::SweepSpec spec = smallSpec(0);
    sim::SimConfig two_channel = spec.config;
    two_channel.channels = 2;
    spec.geometries = {spec.config, two_channel};
    spec.defenses = {"para"};
    spec.providers = {engine::ProviderSpec::svard("S3")};
    spec.mixes = {spec.mixes[0]};

    engine::ExperimentRunner runner(std::move(spec));
    const auto &cells = runner.run();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].cell.geom, 0u);
    EXPECT_EQ(cells[1].cell.geom, 1u);
    for (const auto &c : cells)
        EXPECT_GT(c.metrics.weightedSpeedup, 0.0);
    // The hand-built 2-channel config kept the default config's
    // "ddr4-table4" label while changing the organization; the
    // runner relabels it from its actual shape so the two
    // geometries never report under one name.
    EXPECT_EQ(cells[0].geometry, "ddr4-table4");
    EXPECT_EQ(cells[1].geometry, "2ch-16b-128Kr");
}

engine::SweepSpec
presetSpec(unsigned threads)
{
    engine::SweepSpec spec = smallSpec(threads);
    spec.config.cores = 4;
    spec.defenses = {"para"};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S3")};
    spec.mixes = {spec.mixes[0]};
    spec.requestsPerCore = 500;
    spec.geometryNames = {"ddr4-table4", "ddr5-4800-32bank",
                          "hbm2-pc-16ch"};
    return spec;
}

TEST(ExperimentRunner, PresetGeometryAxisSweepsByName)
{
    engine::ExperimentRunner runner(presetSpec(0));
    const auto &cells = runner.run();
    ASSERT_EQ(cells.size(), 3u * 2u); // geometries x providers

    // Every cell is labeled with its preset, the resolved configs
    // carry the preset organizations, and fingerprints are distinct
    // across geometries for otherwise-identical coordinates — a
    // cached DDR4 cell can never be served for an HBM2 cell.
    const auto &geoms = runner.geometries();
    ASSERT_EQ(geoms.size(), 3u);
    EXPECT_EQ(geoms[1].banksPerRank(), 32u);
    EXPECT_EQ(geoms[2].channels, 16u);
    std::set<uint64_t> fingerprints;
    for (const auto &c : cells) {
        EXPECT_EQ(c.geometry, geoms[c.cell.geom].geometry);
        EXPECT_GT(c.metrics.weightedSpeedup, 0.0);
        fingerprints.insert(c.fingerprint);
    }
    EXPECT_EQ(fingerprints.size(), cells.size());
    EXPECT_EQ(cells[0].geometry, "ddr4-table4");
    EXPECT_EQ(cells[2].geometry, "ddr5-4800-32bank");
    EXPECT_EQ(cells[4].geometry, "hbm2-pc-16ch");
}

TEST(ExperimentRunner, PresetSweepIsThreadCountInvariant)
{
    engine::ExperimentRunner serial(presetSpec(1));
    engine::ExperimentRunner sharded(presetSpec(4));
    const auto &a = serial.run();
    const auto &b = sharded.run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].geometry, b[i].geometry) << i;
        EXPECT_EQ(a[i].fingerprint, b[i].fingerprint) << i;
        EXPECT_DOUBLE_EQ(a[i].metrics.weightedSpeedup,
                         b[i].metrics.weightedSpeedup)
            << i;
        EXPECT_DOUBLE_EQ(a[i].normalized.weightedSpeedup,
                         b[i].normalized.weightedSpeedup)
            << i;
    }
}

TEST(ExperimentRunner, UnknownGeometryPresetThrowsUpFront)
{
    engine::SweepSpec spec = smallSpec(1);
    spec.geometryNames = {"ddr4-table4", "hbm3-not-yet"};
    EXPECT_THROW(engine::ExperimentRunner runner(std::move(spec)),
                 std::invalid_argument);
}

TEST(ExperimentRunner, UnknownDefenseNameThrowsUpFront)
{
    engine::SweepSpec spec = smallSpec(1);
    spec.defenses = {"para", "definitely-not-registered"};
    EXPECT_THROW(engine::ExperimentRunner runner(std::move(spec)),
                 std::invalid_argument);
}

TEST(ExperimentRunner, DegenerateSpecsThrowInsteadOfEmptyGrids)
{
    // An empty axis would silently enumerate a zero-cell grid; every
    // degenerate shape must throw on the caller's thread instead.
    {
        engine::SweepSpec spec = smallSpec(1);
        spec.mixes.clear();
        EXPECT_THROW(engine::ExperimentRunner runner(std::move(spec)),
                     std::invalid_argument);
    }
    {
        engine::SweepSpec spec = smallSpec(1);
        spec.defenses.clear();
        EXPECT_THROW(engine::ExperimentRunner runner(std::move(spec)),
                     std::invalid_argument);
    }
    {
        engine::SweepSpec spec = smallSpec(1);
        spec.thresholds.clear();
        EXPECT_THROW(engine::ExperimentRunner runner(std::move(spec)),
                     std::invalid_argument);
    }
    {
        engine::SweepSpec spec = smallSpec(1);
        spec.providers.clear();
        EXPECT_THROW(engine::ExperimentRunner runner(std::move(spec)),
                     std::invalid_argument);
    }
    {
        engine::SweepSpec spec = smallSpec(1);
        spec.requestsPerCore = 0;
        EXPECT_THROW(engine::ExperimentRunner runner(std::move(spec)),
                     std::invalid_argument);
    }
    {
        engine::SweepSpec spec = smallSpec(1);
        spec.mixes[1].benchIdx.clear();
        EXPECT_THROW(engine::ExperimentRunner runner(std::move(spec)),
                     std::invalid_argument);
    }
}

TEST(AdversarialSweep, DegenerateSpecsThrow)
{
    auto base = [] {
        engine::AdversarialSpec adv;
        adv.config.cores = 4;
        adv.requestsPerCore = 500;
        adv.cases.push_back({"Hydra-thrash", "hydra",
                             {sim::adversarialHydraTrace(500, 3)}});
        adv.providers = {engine::ProviderSpec::uniform()};
        return adv;
    };
    {
        engine::AdversarialSpec adv = base();
        adv.cases.clear();
        EXPECT_THROW(engine::runAdversarialSweep(adv),
                     std::invalid_argument);
    }
    {
        engine::AdversarialSpec adv = base();
        adv.providers.clear();
        EXPECT_THROW(engine::runAdversarialSweep(adv),
                     std::invalid_argument);
    }
    {
        engine::AdversarialSpec adv = base();
        adv.cases[0].traces.clear();
        EXPECT_THROW(engine::runAdversarialSweep(adv),
                     std::invalid_argument);
    }
    {
        engine::AdversarialSpec adv = base();
        adv.requestsPerCore = 0;
        EXPECT_THROW(engine::runAdversarialSweep(adv),
                     std::invalid_argument);
    }
}

} // namespace
} // namespace svard
