/**
 * @file
 * Tests for the multi-process sweep fabric: work-ledger claim /
 * lease / reclaim semantics, fencing, and the headline kill-storm
 * guarantee — worker processes killed at injected fault points are
 * reclaimed by survivors, no grid cell is ever executed twice (shard
 * accounting proves it), and the coordinator's merged output is
 * byte-identical to a single-process run.
 *
 * This binary supplies its own main(): when SVARD_FABRIC_ROLE=worker
 * it re-enters as a fabric worker child (the kill-storm tests spawn
 * it via /proc/self/exe), otherwise it runs the gtest suite.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "engine/runner.h"
#include "fabric/fabric.h"
#include "fabric/ledger.h"
#include "fault_inject/fault_inject.h"
#include "io/result_sink.h"
#include "io/sweep_cache.h"
#include "obs/manifest.h"
#include "sim/workload.h"

namespace svard {
namespace {

/** Kill/torn drills need the fault harness; self-skip when it is
 *  compiled out (-DSVARD_FAULTS=OFF). */
#define REQUIRE_FAULTS()                                               \
    if (!faults::compiled())                                           \
    GTEST_SKIP() << "fault harness compiled out (-DSVARD_FAULTS=OFF)"

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "svard_fabric_" + name;
}

/** Empty per-test scratch directory (recreated on every run). */
std::string
freshDir(const std::string &name)
{
    const std::string dir = tmpPath(name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/**
 * The grid every fabric test shares — parent, worker children, and
 * the single-process reference must build it identically or the spec
 * fingerprints diverge and the ledger rejects the mismatch (which is
 * itself the guarantee under test in FingerprintMismatch).
 * 8 cells: para x {1024, 128} x {NoSvard, Svard-S0} x 2 mixes.
 */
engine::SweepSpec
fabricSpec()
{
    engine::SweepSpec spec;
    spec.config.cores = 4;
    spec.defenses = {"para"};
    spec.thresholds = {1024.0, 128.0};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S0")};
    spec.mixes = sim::workloadMixes(2, spec.config.cores);
    spec.requestsPerCore = 400;
    spec.threads = 1;
    return spec;
}

fabric::FabricOptions
optionsFor(const std::string &ledger, const std::string &id,
           uint64_t lease_ms = 10000)
{
    fabric::FabricOptions opt;
    opt.ledgerPath = ledger;
    opt.workerId = id;
    opt.chunk = 2; // 8 cells -> 4 claim ranges
    opt.leaseMs = lease_ms;
    opt.pollMs = 25;
    return opt;
}

} // anonymous namespace

/** Child-process entry: run one fabric worker per the environment
 *  (SVARD_FAULT drives the injected crash, if any). */
int
workerChildMain()
{
    const char *ledger = std::getenv("SVARD_FABRIC_LEDGER");
    const char *id = std::getenv("SVARD_FABRIC_ID");
    const char *lease = std::getenv("SVARD_FABRIC_LEASE_MS");
    if (!ledger || !id) {
        std::fprintf(stderr, "worker child: missing env\n");
        return 2;
    }
    try {
        const fabric::WorkerReport rep = fabric::runWorker(
            fabricSpec(),
            optionsFor(ledger, id,
                       lease ? std::strtoull(lease, nullptr, 10)
                             : 10000));
        return rep.interrupted ? 130 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "worker child %s: %s\n", id, e.what());
        return 3;
    }
}

namespace {

/** Fork+exec this binary as a fabric worker. `fault` becomes the
 *  child's SVARD_FAULT plan (empty = run clean). */
pid_t
spawnWorker(const std::string &ledger, const std::string &id,
            const std::string &fault, uint64_t lease_ms)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    ::setenv("SVARD_FABRIC_ROLE", "worker", 1);
    ::setenv("SVARD_FABRIC_LEDGER", ledger.c_str(), 1);
    ::setenv("SVARD_FABRIC_ID", id.c_str(), 1);
    ::setenv("SVARD_FABRIC_LEASE_MS",
             std::to_string(lease_ms).c_str(), 1);
    if (fault.empty())
        ::unsetenv("SVARD_FAULT");
    else
        ::setenv("SVARD_FAULT", fault.c_str(), 1);
    char prog[] = "test_fabric-worker";
    char *argv[] = {prog, nullptr};
    ::execv("/proc/self/exe", argv);
    ::_exit(127);
}

int
waitExit(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return -WTERMSIG(status);
}

/** (seed, fingerprint) of every grid cell (baselines excluded). */
std::vector<std::pair<uint64_t, uint64_t>>
gridCellKeys()
{
    engine::ExperimentRunner runner(fabricSpec());
    runner.prepareCells();
    std::vector<std::pair<uint64_t, uint64_t>> keys;
    for (const auto &c : runner.resolvedCells())
        keys.emplace_back(c.seed, c.fingerprint);
    return keys;
}

// ------------------------------------------------------------------
// Work-ledger unit tests
// ------------------------------------------------------------------

TEST(WorkLedger, ClaimGridCoversEveryRangeExactlyOnce)
{
    const std::string path = tmpPath("claim_grid.ledger");
    std::remove(path.c_str());
    fabric::LedgerConfig cfg;
    cfg.path = path;
    cfg.fingerprint = 0xFEED;
    cfg.cells = 20;
    cfg.chunk = 8;
    fabric::WorkLedger w0(cfg, "w0");

    std::vector<fabric::CellRange> got;
    for (;;) {
        const fabric::ClaimResult r = w0.claimNext();
        if (r.outcome != fabric::ClaimOutcome::Claimed)
            break;
        EXPECT_FALSE(r.reclaimed);
        got.push_back(r.range);
        EXPECT_TRUE(w0.markDone(r.range));
    }
    ASSERT_EQ(got.size(), 3u); // [0,8) [8,16) [16,20)
    EXPECT_EQ(got[0].begin, 0u);
    EXPECT_EQ(got[2].begin, 16u);
    EXPECT_EQ(got[2].end, 20u)
        << "the tail range clamps to the cell count";

    const fabric::LedgerState s = fabric::WorkLedger::read(path);
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.rangesDone, 3u);
    EXPECT_EQ(s.reclaims, 0u);
    ASSERT_EQ(s.workers.size(), 1u);
    EXPECT_EQ(s.workers[0].id, "w0");
    EXPECT_EQ(s.workers[0].rangesClaimed, 3u);
    EXPECT_EQ(w0.claimNext().outcome, fabric::ClaimOutcome::Complete);
}

TEST(WorkLedger, AttachingADifferentGridEditionThrows)
{
    const std::string path = tmpPath("mismatch.ledger");
    std::remove(path.c_str());
    fabric::LedgerConfig cfg;
    cfg.path = path;
    cfg.fingerprint = 1;
    cfg.cells = 8;
    fabric::WorkLedger w0(cfg, "w0");

    fabric::LedgerConfig other = cfg;
    other.fingerprint = 2;
    EXPECT_THROW(fabric::WorkLedger(other, "w1"),
                 std::runtime_error);
    other = cfg;
    other.cells = 9;
    EXPECT_THROW(fabric::WorkLedger(other, "w1"),
                 std::runtime_error);
    // Same edition attaches fine.
    fabric::WorkLedger w1(cfg, "w1");
    EXPECT_EQ(w1.claimNext().outcome, fabric::ClaimOutcome::Claimed);
}

TEST(WorkLedger, ExpiredLeaseIsReclaimedAndTheOldHolderIsFenced)
{
    const std::string path = tmpPath("reclaim.ledger");
    std::remove(path.c_str());
    fabric::LedgerConfig cfg;
    cfg.path = path;
    cfg.fingerprint = 0xF00D;
    cfg.cells = 4;
    cfg.chunk = 4; // one range: the contention is total
    cfg.leaseMs = 60;
    fabric::WorkLedger dead(cfg, "dead");
    fabric::WorkLedger live(cfg, "live");

    ASSERT_EQ(dead.claimNext().outcome,
              fabric::ClaimOutcome::Claimed);
    // While the lease is fresh the range is hands-off.
    EXPECT_EQ(live.claimNext().outcome, fabric::ClaimOutcome::Wait);

    std::this_thread::sleep_for(std::chrono::milliseconds(90));
    const fabric::ClaimResult taken = live.claimNext();
    ASSERT_EQ(taken.outcome, fabric::ClaimOutcome::Claimed);
    EXPECT_TRUE(taken.reclaimed);

    // Fencing: the superseded holder can no longer beat or complete.
    EXPECT_FALSE(dead.heartbeat());
    EXPECT_FALSE(dead.markDone({0, 4}));
    EXPECT_TRUE(live.markDone(taken.range));

    const fabric::LedgerState s = fabric::WorkLedger::read(path);
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.reclaims, 1u);
    ASSERT_EQ(s.workers.size(), 2u); // sorted: "dead" < "live"
    EXPECT_EQ(s.workers[0].rangesLost, 1u);
    EXPECT_EQ(s.workers[1].rangesReclaimed, 1u);
    EXPECT_EQ(s.workers[1].cellsExecuted, 4u);
    EXPECT_EQ(s.workers[0].cellsExecuted, 0u)
        << "a fenced done must not count";
}

TEST(WorkLedger, HeartbeatKeepsALeaseAliveIndefinitely)
{
    const std::string path = tmpPath("beat.ledger");
    std::remove(path.c_str());
    fabric::LedgerConfig cfg;
    cfg.path = path;
    cfg.fingerprint = 7;
    cfg.cells = 4;
    cfg.chunk = 4;
    cfg.leaseMs = 80;
    fabric::WorkLedger holder(cfg, "holder");
    fabric::WorkLedger rival(cfg, "rival");

    ASSERT_EQ(holder.claimNext().outcome,
              fabric::ClaimOutcome::Claimed);
    for (int i = 0; i < 5; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        EXPECT_TRUE(holder.heartbeat());
        EXPECT_EQ(rival.claimNext().outcome,
                  fabric::ClaimOutcome::Wait)
            << "a heartbeated lease must never expire (iteration "
            << i << ")";
    }
}

// ------------------------------------------------------------------
// Fabric end-to-end
// ------------------------------------------------------------------

/** Single-process reference CSV of fabricSpec(). */
std::string
referenceCsv(const std::string &tag)
{
    const std::string path = tmpPath(tag + "_ref.csv");
    std::remove(path.c_str());
    engine::SweepSpec spec = fabricSpec();
    spec.sink = std::make_shared<io::CsvSink>(path);
    engine::ExperimentRunner runner(spec);
    runner.run();
    return slurp(path);
}

/** Count how often each grid cell appears across all shards: an
 *  appearance is an execution (cells are stored exactly when
 *  simulated), so a count above 1 is a double-execute. */
size_t
maxExecutionsPerCell(const std::string &ledger)
{
    size_t worst = 0;
    const auto keys = gridCellKeys();
    for (const auto &key : keys) {
        size_t count = 0;
        for (const std::string &shard : fabric::shardFiles(ledger))
            for (const auto &row : io::readBinaryResults(shard))
                if (row.seed == key.first &&
                    row.fingerprint == key.second)
                    ++count;
        worst = std::max(worst, count);
    }
    return worst;
}

TEST(Fabric, KillStormRecoversWithZeroDoubleExecutes)
{
    REQUIRE_FAULTS();
    const std::string dir = freshDir("storm");
    const std::string ledger = dir + "/storm.ledger";
    const uint64_t lease_ms = 500;

    // Round 1: five workers, every one killed at an injected point —
    // mid-claim, before executing a cell, after checkpointing cells,
    // mid-record (a torn shard tail the reload must repair), and
    // between finishing a range and writing its done record (the
    // donor-skip path: the range is fully checkpointed but looks
    // unfinished, so a survivor reclaims it and must skip every cell).
    const std::vector<std::pair<std::string, std::string>> doomed = {
        {"wa", "ledger.claim:kill@1"},
        {"wb", "runner.cell:kill@1"},
        {"wc", "runner.cell:kill@3"},
        {"wd", "cache.store:torn@2"},
        {"we", "ledger.done:kill@1"},
    };
    std::vector<pid_t> pids;
    for (const auto &[id, fault] : doomed)
        pids.push_back(spawnWorker(ledger, id, fault, lease_ms));
    for (pid_t pid : pids)
        EXPECT_EQ(waitExit(pid), 137)
            << "every round-1 worker must die at its injected fault";

    const fabric::LedgerState mid = fabric::WorkLedger::read(ledger);
    EXPECT_FALSE(mid.complete())
        << "the storm must actually leave work behind";

    // Let the dead workers' leases expire, then send in survivors.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(lease_ms + 200));
    const pid_t s0 = spawnWorker(ledger, "s0", "", lease_ms);
    const pid_t s1 = spawnWorker(ledger, "s1", "", lease_ms);
    EXPECT_EQ(waitExit(s0), 0);
    EXPECT_EQ(waitExit(s1), 0);

    const fabric::LedgerState done = fabric::WorkLedger::read(ledger);
    EXPECT_TRUE(done.complete());
    EXPECT_GT(done.reclaims, 0u)
        << "survivors must have reclaimed dead workers' ranges";

    // The acceptance bar: no cell simulated twice, ever. Donor-shard
    // scans make reclaimed ranges skip cells their dead holder
    // already checkpointed.
    EXPECT_LE(maxExecutionsPerCell(ledger), 1u);

    // Coordinator: merge + emit, byte-identical to single-process,
    // with per-worker splits in the manifest.
    const std::string out = dir + "/fabric.csv";
    engine::SweepSpec spec = fabricSpec();
    spec.sink = std::make_shared<io::CsvSink>(out);
    spec.manifestPath = out + ".manifest.json";
    const fabric::CoordinatorResult res = fabric::runCoordinator(
        spec, optionsFor(ledger, "coordinator", lease_ms));
    EXPECT_FALSE(res.interrupted);
    ASSERT_EQ(res.results.size(), 8u);
    EXPECT_EQ(slurp(out), referenceCsv("storm"));

    obs::RunManifest m;
    std::string err;
    ASSERT_TRUE(obs::readManifest(spec.manifestPath, &m, &err))
        << err;
    EXPECT_FALSE(m.interrupted);
    ASSERT_GE(m.fabricWorkers.size(), 6u);
    uint64_t ledger_cells = 0, reclaimed_ranges = 0;
    for (const auto &w : m.fabricWorkers) {
        ledger_cells += w.cellsExecuted;
        reclaimed_ranges += w.rangesReclaimed;
    }
    EXPECT_EQ(ledger_cells, 8u)
        << "every cell completed under exactly one worker";
    EXPECT_GT(reclaimed_ranges, 0u);
}

TEST(Fabric, CoordinatorAloneFinishesAfterAllWorkersDie)
{
    REQUIRE_FAULTS();
    const std::string dir = freshDir("solo");
    const std::string ledger = dir + "/solo.ledger";
    const uint64_t lease_ms = 400;

    const pid_t pid =
        spawnWorker(ledger, "w0", "runner.cell:kill@2", lease_ms);
    EXPECT_EQ(waitExit(pid), 137);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(lease_ms + 150));

    // No survivors: the coordinator reclaims and finishes the grid
    // itself — a fabric can never deadlock on dead workers.
    const std::string out = dir + "/solo.csv";
    engine::SweepSpec spec = fabricSpec();
    spec.sink = std::make_shared<io::CsvSink>(out);
    const fabric::CoordinatorResult res = fabric::runCoordinator(
        spec, optionsFor(ledger, "coordinator", lease_ms));
    EXPECT_FALSE(res.interrupted);
    EXPECT_TRUE(res.ledger.complete());
    EXPECT_LE(maxExecutionsPerCell(ledger), 1u);
    EXPECT_EQ(slurp(out), referenceCsv("solo"));
}

TEST(Fabric, StopFlagInterruptsAWorkerAndAnotherResumes)
{
    const std::string dir = freshDir("stop");
    const std::string ledger = dir + "/stop.ledger";

    std::atomic<bool> stop{true}; // interrupted before the 1st claim
    fabric::FabricOptions opt = optionsFor(ledger, "w0");
    opt.stopFlag = &stop;
    const fabric::WorkerReport rep =
        fabric::runWorker(fabricSpec(), opt);
    EXPECT_TRUE(rep.interrupted);
    EXPECT_EQ(rep.rangesClaimed, 0u);
    EXPECT_FALSE(fabric::WorkLedger::read(ledger).complete());

    // The grid is untouched; a clean worker finishes it.
    const fabric::WorkerReport rep2 =
        fabric::runWorker(fabricSpec(), optionsFor(ledger, "w1"));
    EXPECT_FALSE(rep2.interrupted);
    EXPECT_EQ(rep2.cellsExecuted, 8u);
    EXPECT_TRUE(fabric::WorkLedger::read(ledger).complete());
}

TEST(Fabric, RestartedWorkerResumesFromItsOwnShard)
{
    REQUIRE_FAULTS();
    const std::string dir = freshDir("restart");
    const std::string ledger = dir + "/restart.ledger";
    const uint64_t lease_ms = 300;

    // Dies after 3 cells executed (kill@4 fires before the 4th).
    const pid_t pid =
        spawnWorker(ledger, "w0", "runner.cell:kill@4", lease_ms);
    EXPECT_EQ(waitExit(pid), 137);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(lease_ms + 150));

    // Same id returns: its shard is its checkpoint, so the reclaimed
    // range's finished cell resolves as a cache hit, not a re-run.
    // Pre-crash: ranges [0,2) done; [2,4) claimed with cell 2
    // checkpointed; [4,8) untouched. The restart therefore works 6
    // cells, one of them skipped.
    const fabric::WorkerReport rep = fabric::runWorker(
        fabricSpec(), optionsFor(ledger, "w0", lease_ms));
    EXPECT_FALSE(rep.interrupted);
    EXPECT_EQ(rep.cellsExecuted, 5u);
    EXPECT_EQ(rep.cellsSkipped, 1u)
        << "the pre-crash cell must resume from the shard";
    EXPECT_LE(maxExecutionsPerCell(ledger), 1u);
    EXPECT_TRUE(fabric::WorkLedger::read(ledger).complete());
}

} // namespace
} // namespace svard

int
main(int argc, char **argv)
{
    const char *role = std::getenv("SVARD_FABRIC_ROLE");
    if (role && std::string(role) == "worker")
        return svard::workerChildMain();
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
