/**
 * @file
 * Tests for the observability layer (src/obs/) and its load-bearing
 * guarantee: instruments never feed back into simulation. The headline
 * test runs the same tiny sweep with everything off, with metrics +
 * tracing + heartbeats on, and at 1 vs 4 threads, and byte-compares
 * the CSVs. Also covered: exact metric merging across worker threads,
 * chrome-trace JSON validity, manifest round-trips, heartbeat JSONL
 * parsing, the JSON DOM parser itself, log-level filtering, and the
 * flat-vector CategoricalHistogram rewrite.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/parallel.h"
#include "common/stats.h"
#include "engine/runner.h"
#include "io/async_sink.h"
#include "io/result_sink.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace svard {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "svard_obs_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ------------------------------------------------------------------
// JSON DOM parser (the validator every artifact test leans on)
// ------------------------------------------------------------------

TEST(ObsJson, ParsesObjectsArraysAndScalars)
{
    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::Value::parse(
        R"({"a": 1, "b": [true, false, null], "c": {"d": "x\ny"},)"
        R"( "e": -2.5e3})",
        &v, &err))
        << err;
    ASSERT_EQ(v.type(), obs::json::Value::Type::Object);
    EXPECT_DOUBLE_EQ(v.find("a")->asNumber(), 1.0);
    ASSERT_EQ(v.find("b")->items().size(), 3u);
    EXPECT_TRUE(v.find("b")->items()[0].asBool());
    EXPECT_TRUE(v.find("b")->items()[2].isNull());
    EXPECT_EQ(v.find("c")->find("d")->asString(), "x\ny");
    EXPECT_DOUBLE_EQ(v.find("e")->asNumber(), -2500.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ObsJson, U64RoundTripsExactly)
{
    // 2^64 - 1 is not representable as a double; asU64 must re-parse
    // the raw token (fingerprints and seeds depend on this).
    obs::json::Value v;
    ASSERT_TRUE(obs::json::Value::parse(
        "{\"fp\": 18446744073709551615}", &v));
    EXPECT_EQ(v.find("fp")->asU64(), UINT64_MAX);
}

TEST(ObsJson, RejectsMalformedInput)
{
    obs::json::Value v;
    std::string err;
    EXPECT_FALSE(obs::json::Value::parse("{\"a\": }", &v, &err));
    EXPECT_FALSE(obs::json::Value::parse("[1, 2", &v, &err));
    EXPECT_FALSE(obs::json::Value::parse("{} trailing", &v, &err));
    EXPECT_FALSE(obs::json::Value::parse("", &v, &err));
}

TEST(ObsJson, FormatNumberRoundTrips)
{
    for (double d : {0.0, 1.0, -2.5, 1.0 / 3.0, 1e300, 6.25e-3}) {
        obs::json::Value v;
        ASSERT_TRUE(obs::json::Value::parse(
            obs::json::formatNumber(d), &v));
        EXPECT_DOUBLE_EQ(v.asNumber(), d);
    }
}

// ------------------------------------------------------------------
// Log-level filtering (satellite: inform() moved to stderr + gate)
// ------------------------------------------------------------------

TEST(ObsLog, ParseLogLevel)
{
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("0"), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("3"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel(nullptr), LogLevel::Info);
    EXPECT_EQ(parseLogLevel(""), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("bogus"), LogLevel::Info);
}

TEST(ObsLog, SetLogLevelOverrides)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(before);
}

// ------------------------------------------------------------------
// CategoricalHistogram (satellite: std::map -> flat vector)
// ------------------------------------------------------------------

TEST(ObsStats, CategoricalHistogramFlatCounts)
{
    CategoricalHistogram h({32000, 1000, 64000, 4000});
    h.add(1000);
    h.add(1000);
    h.add(64000);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.count(1000), 2u);
    EXPECT_EQ(h.count(64000), 1u);
    EXPECT_EQ(h.count(32000), 0u);
    EXPECT_EQ(h.count(999), 0u); // unknown label reads as zero
    EXPECT_DOUBLE_EQ(h.fraction(1000), 2.0 / 3.0);
    // Label order is preserved as given (Fig. 5 prints in axis order).
    EXPECT_EQ(h.labels(),
              (std::vector<int64_t>{32000, 1000, 64000, 4000}));
}

TEST(ObsStats, CategoricalHistogramDuplicateLabelsCollapse)
{
    // Duplicate labels share one counter (the old map semantics).
    CategoricalHistogram h({5, 5, 7});
    h.add(5);
    h.add(5);
    h.add(7);
    EXPECT_EQ(h.count(5), 2u);
    EXPECT_EQ(h.count(7), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(ObsStatsDeathTest, CategoricalHistogramUnknownLabelPanics)
{
    CategoricalHistogram h({1, 2, 4});
    EXPECT_DEATH(h.add(3), "unknown histogram label");
}

// ------------------------------------------------------------------
// Metrics registry
// ------------------------------------------------------------------

TEST(ObsMetrics, CountersMergeExactlyAcrossThreadCounts)
{
    if (!obs::metricsCompiled())
        GTEST_SKIP() << "observability compiled out (SVARD_OBS=OFF)";
    obs::setMetricsEnabled(true);
    const obs::MetricId id = obs::counter("test.merge_counter");
    for (unsigned threads : {1u, 4u, 7u}) {
        obs::resetMetrics();
        parallelFor(1000, threads,
                    [&](size_t i) { obs::add(id, i % 3 + 1); });
        uint64_t expect = 0;
        for (size_t i = 0; i < 1000; ++i)
            expect += i % 3 + 1;
        EXPECT_EQ(obs::snapshot().value("test.merge_counter"), expect)
            << threads << " threads";
    }
}

TEST(ObsMetrics, GaugeMergesByMax)
{
    if (!obs::metricsCompiled())
        GTEST_SKIP() << "observability compiled out (SVARD_OBS=OFF)";
    obs::setMetricsEnabled(true);
    obs::resetMetrics();
    const obs::MetricId id = obs::gauge("test.high_water");
    parallelFor(100, 4, [&](size_t i) {
        obs::gaugeMax(id, i * 10);
        obs::gaugeMax(id, 5); // lower write must not regress the max
    });
    EXPECT_EQ(obs::snapshot().value("test.high_water"), 990u);
}

TEST(ObsMetrics, HistogramBucketsByBitWidth)
{
    if (!obs::metricsCompiled())
        GTEST_SKIP() << "observability compiled out (SVARD_OBS=OFF)";
    obs::setMetricsEnabled(true);
    obs::resetMetrics();
    const obs::MetricId id = obs::histogram("test.latency");
    obs::observe(id, 0);    // bucket 0
    obs::observe(id, 1);    // bucket 1
    obs::observe(id, 2);    // bucket 2
    obs::observe(id, 3);    // bucket 2
    obs::observe(id, 1024); // bucket 11
    const obs::Snapshot snap = obs::snapshot();
    const obs::MetricValue *m = snap.find("test.latency");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind, obs::MetricKind::Histogram);
    EXPECT_EQ(m->value, 5u);
    EXPECT_EQ(m->sum, 0u + 1 + 2 + 3 + 1024);
    ASSERT_EQ(m->buckets.size(), obs::kHistogramBuckets);
    EXPECT_EQ(m->buckets[0], 1u);
    EXPECT_EQ(m->buckets[1], 1u);
    EXPECT_EQ(m->buckets[2], 2u);
    EXPECT_EQ(m->buckets[11], 1u);
    EXPECT_DOUBLE_EQ(m->mean(), 1030.0 / 5.0);
}

TEST(ObsMetrics, DisabledCollectionCountsNothing)
{
    if (!obs::metricsCompiled())
        GTEST_SKIP() << "observability compiled out (SVARD_OBS=OFF)";
    const obs::MetricId id = obs::counter("test.gated_counter");
    obs::setMetricsEnabled(true);
    obs::resetMetrics();
    obs::setMetricsEnabled(false);
    obs::add(id, 42);
    obs::setMetricsEnabled(true);
    EXPECT_EQ(obs::snapshot().value("test.gated_counter"), 0u);
}

TEST(ObsMetrics, SnapshotJsonParses)
{
    if (!obs::metricsCompiled())
        GTEST_SKIP() << "observability compiled out (SVARD_OBS=OFF)";
    obs::setMetricsEnabled(true);
    obs::resetMetrics();
    obs::add(obs::counter("test.json_counter"), 7);
    obs::observe(obs::histogram("test.json_hist"), 100);
    for (int indent : {0, 2}) {
        obs::json::Value v;
        std::string err;
        ASSERT_TRUE(obs::json::Value::parse(
            obs::snapshot().toJson(indent), &v, &err))
            << err;
        EXPECT_EQ(v.find("test.json_counter")->asU64(), 7u);
        const obs::json::Value *h = v.find("test.json_hist");
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->find("count")->asU64(), 1u);
        EXPECT_EQ(h->find("sum")->asU64(), 100u);
    }
}

// ------------------------------------------------------------------
// Chrome-trace spans
// ------------------------------------------------------------------

TEST(ObsTrace, SpansWriteValidChromeTraceJson)
{
    const std::string path = tmpPath("trace.json");
    obs::startTrace(path);
    EXPECT_TRUE(obs::traceEnabled());
    EXPECT_EQ(obs::tracePath(), path);
    {
        obs::Span s("test", "outer");
        s.arg("cell", std::string("g0/d1"));
        s.arg("seed", uint64_t{12345});
        s.arg("ratio", 0.5);
        obs::Span inner("test", "inner");
    }
    parallelFor(8, 4, [&](size_t i) {
        obs::Span s("test", "worker");
        s.arg("i", static_cast<uint64_t>(i));
    });
    obs::traceInstant("test", "mark");
    obs::stopTrace();
    EXPECT_FALSE(obs::traceEnabled());

    obs::json::Value doc;
    std::string err;
    ASSERT_TRUE(obs::json::Value::parse(slurp(path), &doc, &err))
        << err;
    EXPECT_EQ(doc.find("displayTimeUnit")->asString(), "ms");
    const obs::json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    size_t complete = 0, instants = 0, metadata = 0, workers = 0;
    bool saw_args = false;
    for (const auto &e : events->items()) {
        const std::string ph = e.find("ph")->asString();
        if (ph == "M") {
            ++metadata;
            continue;
        }
        EXPECT_NE(e.find("tid"), nullptr);
        EXPECT_NE(e.find("ts"), nullptr);
        if (ph == "X") {
            ++complete;
            EXPECT_NE(e.find("dur"), nullptr);
        } else if (ph == "i") {
            ++instants;
        }
        if (e.find("name")->asString() == "worker")
            ++workers;
        if (e.find("name")->asString() == "outer") {
            const obs::json::Value *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->find("cell")->asString(), "g0/d1");
            EXPECT_EQ(args->find("seed")->asU64(), 12345u);
            EXPECT_DOUBLE_EQ(args->find("ratio")->asNumber(), 0.5);
            saw_args = true;
        }
    }
    EXPECT_EQ(complete, 10u); // outer + inner + 8 workers
    EXPECT_EQ(workers, 8u);
    EXPECT_EQ(instants, 1u);
    EXPECT_GE(metadata, 1u); // one thread_name lane minimum
    EXPECT_TRUE(saw_args);
    std::remove(path.c_str());
}

TEST(ObsTrace, SpansAreNoOpsWhenDisabled)
{
    ASSERT_FALSE(obs::traceEnabled());
    obs::Span s("test", "ignored");
    s.arg("k", uint64_t{1});
    obs::traceInstant("test", "ignored");
    EXPECT_EQ(obs::tracePath(), "");
}

// ------------------------------------------------------------------
// Heartbeats
// ------------------------------------------------------------------

TEST(ObsProgress, HeartbeatJsonlStream)
{
    const std::string path = tmpPath("heartbeat.jsonl");
    std::remove(path.c_str());
    obs::setHeartbeatPath(path);
    {
        obs::ProgressMeter meter("test-phase", 10, "rows");
        meter.addCached(2);
        for (int i = 0; i < 8; ++i)
            meter.tick();
        meter.finish();
    }
    obs::setHeartbeatPath("");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    size_t lines = 0;
    bool saw_final = false;
    while (std::getline(in, line)) {
        ++lines;
        obs::json::Value v;
        std::string err;
        ASSERT_TRUE(obs::json::Value::parse(line, &v, &err))
            << "line " << lines << ": " << err;
        EXPECT_EQ(v.find("schema")->asString(), "svard-heartbeat-v1");
        EXPECT_EQ(v.find("phase")->asString(), "test-phase");
        EXPECT_EQ(v.find("unit")->asString(), "rows");
        EXPECT_EQ(v.find("total")->asU64(), 10u);
        if (v.find("final")->asBool()) {
            saw_final = true;
            EXPECT_EQ(v.find("done")->asU64(), 8u);
            EXPECT_EQ(v.find("cached")->asU64(), 2u);
        }
    }
    // At least the forced first and final beats.
    EXPECT_GE(lines, 2u);
    EXPECT_TRUE(saw_final);
    std::remove(path.c_str());
}

// ------------------------------------------------------------------
// Manifests
// ------------------------------------------------------------------

TEST(ObsManifest, WriteReadRoundTrip)
{
    const std::string path = tmpPath("manifest.json");
    obs::RunManifest m;
    m.kind = "sweep";
    m.geometries = {"ddr4-table4", "hbm2-pc-16ch"};
    m.specFingerprint = 0xDEADBEEFCAFEF00DULL;
    m.baseSeed = 11;
    m.threads = 4;
    m.requestsPerCore = 6000;
    m.simdImpl = "avx2";
    m.buildFlags = "ndebug,simd,obs";
    m.wallSeconds = 12.5;
    m.cellsTotal = 40;
    m.cellsExecuted = 30;
    m.cellsCached = 10;
    m.baselinesExecuted = 6;
    m.baselinesCached = 2;
    m.sinkQueueHighWater = 17;
    m.outPath = "out.csv";
    m.cachePath = "sweep.cache";
    ASSERT_TRUE(obs::writeManifest(path, m, obs::snapshot()));

    obs::RunManifest r;
    std::string err;
    ASSERT_TRUE(obs::readManifest(path, &r, &err)) << err;
    EXPECT_EQ(r.kind, m.kind);
    EXPECT_EQ(r.geometries, m.geometries);
    EXPECT_EQ(r.specFingerprint, m.specFingerprint);
    EXPECT_EQ(r.baseSeed, m.baseSeed);
    EXPECT_EQ(r.threads, m.threads);
    EXPECT_EQ(r.requestsPerCore, m.requestsPerCore);
    EXPECT_EQ(r.simdImpl, m.simdImpl);
    EXPECT_EQ(r.buildFlags, m.buildFlags);
    EXPECT_DOUBLE_EQ(r.wallSeconds, m.wallSeconds);
    EXPECT_EQ(r.cellsTotal, m.cellsTotal);
    EXPECT_EQ(r.cellsExecuted, m.cellsExecuted);
    EXPECT_EQ(r.cellsCached, m.cellsCached);
    EXPECT_EQ(r.baselinesExecuted, m.baselinesExecuted);
    EXPECT_EQ(r.baselinesCached, m.baselinesCached);
    EXPECT_EQ(r.sinkQueueHighWater, m.sinkQueueHighWater);
    EXPECT_EQ(r.outPath, m.outPath);
    EXPECT_EQ(r.cachePath, m.cachePath);

    // Raw schema validation: the fields external tools key on.
    obs::json::Value doc;
    ASSERT_TRUE(obs::json::Value::parse(slurp(path), &doc, &err))
        << err;
    EXPECT_EQ(doc.find("schema")->asString(), obs::kManifestSchema);
    EXPECT_NE(doc.find("created_unix_ms"), nullptr);
    ASSERT_NE(doc.find("metrics"), nullptr);
    EXPECT_EQ(doc.find("metrics")->type(),
              obs::json::Value::Type::Object);
    std::remove(path.c_str());
}

TEST(ObsManifest, ReadRejectsWrongSchema)
{
    const std::string path = tmpPath("bad_manifest.json");
    {
        std::ofstream out(path);
        out << "{\"schema\": \"something-else-v9\"}\n";
    }
    obs::RunManifest r;
    std::string err;
    EXPECT_FALSE(obs::readManifest(path, &r, &err));
    EXPECT_NE(err.find("schema"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ObsManifest, BuildFlagsStringMatchesCompile)
{
    const std::string flags = obs::buildFlagsString();
    EXPECT_FALSE(flags.empty());
    const bool has_obs = flags.find("obs") != std::string::npos;
    EXPECT_EQ(has_obs, obs::metricsCompiled());
}

// ------------------------------------------------------------------
// The invariant: observability never changes results
// ------------------------------------------------------------------

engine::SweepSpec
tinySpec(const std::string &out_path, unsigned threads)
{
    engine::SweepSpec spec;
    spec.config.cores = 4;
    spec.requestsPerCore = 1000;
    spec.threads = threads;
    spec.defenses = {"para", "hydra"};
    spec.thresholds = {128};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S0")};
    spec.mixes = sim::workloadMixes(1, spec.config.cores);
    spec.sink = std::make_shared<io::AsyncSink>(
        io::makeSinkForPath(out_path));
    return spec;
}

TEST(ObsInvariant, SweepCsvByteIdenticalWithInstrumentsOnOrOff)
{
    // Pass 1: everything off (the plain run).
    obs::setMetricsEnabled(false);
    const std::string plain_csv = tmpPath("plain.csv");
    engine::ExperimentRunner(tinySpec(plain_csv, 1)).run();
    const std::string plain = slurp(plain_csv);
    ASSERT_FALSE(plain.empty());

    // Pass 2: metrics + tracing + heartbeats + manifest, 1 thread.
    const std::string obs_csv = tmpPath("observed.csv");
    const std::string trace_path = tmpPath("sweep_trace.json");
    const std::string beat_path = tmpPath("sweep_beats.jsonl");
    std::remove(beat_path.c_str());
    obs::setMetricsEnabled(true);
    obs::startTrace(trace_path);
    obs::setHeartbeatPath(beat_path);
    engine::SweepSpec observed = tinySpec(obs_csv, 1);
    observed.manifestPath = obs_csv + ".manifest.json";
    observed.progressLabel = "obs-test";
    engine::ExperimentRunner runner(std::move(observed));
    const size_t cells = runner.run().size();
    obs::stopTrace();
    obs::setHeartbeatPath("");
    obs::setMetricsEnabled(false);
    EXPECT_EQ(slurp(obs_csv), plain)
        << "instrumented run altered the result table";

    // Pass 3: same instruments, 4 threads — still byte-identical.
    const std::string mt_csv = tmpPath("observed_mt.csv");
    obs::setMetricsEnabled(true);
    engine::ExperimentRunner(tinySpec(mt_csv, 4)).run();
    obs::setMetricsEnabled(false);
    EXPECT_EQ(slurp(mt_csv), plain)
        << "4-thread instrumented run altered the result table";

    // The traced run produced >= 1 span per executed cell.
    obs::json::Value trace;
    std::string err;
    ASSERT_TRUE(obs::json::Value::parse(slurp(trace_path), &trace,
                                        &err))
        << err;
    size_t cell_spans = 0;
    for (const auto &e : trace.find("traceEvents")->items())
        if (e.find("ph")->asString() == "X" &&
            e.find("name")->asString() == "cell")
            ++cell_spans;
    EXPECT_EQ(cell_spans, cells);

    // Heartbeats flowed and the manifest describes the run.
    EXPECT_FALSE(slurp(beat_path).empty());
    obs::RunManifest m;
    ASSERT_TRUE(
        obs::readManifest(obs_csv + ".manifest.json", &m, &err))
        << err;
    EXPECT_EQ(m.kind, "sweep");
    EXPECT_EQ(m.specFingerprint, runner.specFingerprint());
    EXPECT_NE(m.specFingerprint, 0u);
    EXPECT_EQ(m.baseSeed, 11u);
    EXPECT_EQ(m.threads, 1u);
    EXPECT_EQ(m.cellsTotal, cells);
    EXPECT_EQ(m.cellsExecuted, cells);
    EXPECT_FALSE(m.simdImpl.empty());
    EXPECT_FALSE(m.buildFlags.empty());

    for (const std::string &p :
         {plain_csv, obs_csv, mt_csv, trace_path, beat_path,
          obs_csv + ".manifest.json"})
        std::remove(p.c_str());
}

TEST(ObsInvariant, SpecFingerprintStableAcrossInstrumentation)
{
    // The manifest's grid identity depends only on the spec, never on
    // which instruments were live.
    const std::string a_csv = tmpPath("fp_a.csv");
    const std::string b_csv = tmpPath("fp_b.csv");
    obs::setMetricsEnabled(false);
    engine::ExperimentRunner a(tinySpec(a_csv, 1));
    a.run();
    obs::setMetricsEnabled(true);
    engine::ExperimentRunner b(tinySpec(b_csv, 2));
    b.run();
    obs::setMetricsEnabled(false);
    EXPECT_EQ(a.specFingerprint(), b.specFingerprint());
    EXPECT_NE(a.specFingerprint(), 0u);
    std::remove(a_csv.c_str());
    std::remove(b_csv.c_str());
}

} // namespace
} // namespace svard
