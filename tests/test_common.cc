/**
 * @file
 * Unit tests for the common utilities: RNG determinism/moments,
 * descriptive statistics, histograms, and the table emitter.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <map>
#include <utility>
#include <stdexcept>
#include <vector>

#include "common/flat_table.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/word_table.h"

namespace svard {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowIsInRangeAndCoversRange)
{
    Rng rng(9);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = rng.below(10);
        ASSERT_LT(v, 10u);
        ++hits[v];
    }
    for (int h : hits)
        EXPECT_GT(h, 700); // near-uniform: expect ~1000 each
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal();
        sum += z;
        sq += z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BinomialMoments)
{
    Rng rng(13);
    const uint64_t n = 10000;
    const double p = 0.01;
    double sum = 0.0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i)
        sum += static_cast<double>(rng.binomial(n, p));
    EXPECT_NEAR(sum / trials, n * p, 3.0);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(17);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
}

TEST(HashSeed, OrderSensitive)
{
    EXPECT_NE(hashSeed({1, 2}), hashSeed({2, 1}));
    EXPECT_EQ(hashSeed({1, 2, 3}), hashSeed({1, 2, 3}));
}

TEST(Stats, MeanAndStdev)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(stdev(xs), 2.138, 0.001);
}

TEST(Stats, CoefficientOfVariation)
{
    std::vector<double> xs = {10, 10, 10};
    EXPECT_DOUBLE_EQ(coefficientOfVariation(xs), 0.0);
    std::vector<double> ys = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(coefficientOfVariation(ys), 2.138 / 5.0, 0.001);
}

TEST(Stats, QuantileInterpolation)
{
    std::vector<double> xs = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, BoxStatsBasics)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(i);
    const BoxStats bs = boxStats(xs);
    EXPECT_EQ(bs.n, 100u);
    EXPECT_DOUBLE_EQ(bs.min, 1.0);
    EXPECT_DOUBLE_EQ(bs.max, 100.0);
    EXPECT_NEAR(bs.median, 50.5, 1e-9);
    EXPECT_NEAR(bs.q1, 25.75, 1e-9);
    EXPECT_NEAR(bs.q3, 75.25, 1e-9);
    EXPECT_LE(bs.whiskerLow, bs.q1);
    EXPECT_GE(bs.whiskerHigh, bs.q3);
}

TEST(Stats, BoxStatsWhiskersExcludeOutliers)
{
    std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 1000};
    const BoxStats bs = boxStats(xs);
    EXPECT_LT(bs.whiskerHigh, 1000.0);
    EXPECT_DOUBLE_EQ(bs.max, 1000.0);
}

TEST(Stats, CategoricalHistogram)
{
    CategoricalHistogram h({1, 2, 4});
    h.add(1);
    h.add(1);
    h.add(4);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(4), 1.0 / 3.0);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Stats, PearsonKnownValues)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    std::vector<double> zs = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
    std::vector<double> cs = {3, 3, 3, 3, 3};
    EXPECT_DOUBLE_EQ(pearson(xs, cs), 0.0);
}

TEST(Table, RowsAndFormat)
{
    Table t("demo", {"a", "b"});
    t.addRow({Table::fmt(int64_t(1)), Table::fmt(2.5, 1)});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(Table::fmtHc(4096), "4K");
    EXPECT_EQ(Table::fmtHc(1000), "1000");
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
}

TEST(Table, EnvIntFallback)
{
    EXPECT_EQ(envInt("SVARD_SURELY_UNSET_ENV_VAR", 123), 123);
}

// -----------------------------------------------------------------
// FlatTable (the defenses' hot-path counter store)
// -----------------------------------------------------------------

TEST(FlatTable, InsertFindAndGrowthKeepEveryEntry)
{
    FlatTable<uint32_t> t(16);
    // Push far past the initial capacity so several growths happen.
    for (uint64_t k = 0; k < 10000; ++k)
        t.refOrInsert(k * 0x9E3779B97F4A7C15ULL) =
            static_cast<uint32_t>(k);
    EXPECT_EQ(t.size(), 10000u);
    EXPECT_GT(t.capacity(), 10000u);
    for (uint64_t k = 0; k < 10000; ++k) {
        const uint32_t *v = t.find(k * 0x9E3779B97F4A7C15ULL);
        ASSERT_NE(v, nullptr) << k;
        EXPECT_EQ(*v, static_cast<uint32_t>(k));
    }
    EXPECT_EQ(t.find(0xDEADBEEFULL), nullptr);
}

TEST(FlatTable, GenerationClearIsO1AndResurrectsNothing)
{
    FlatTable<uint32_t> t;
    for (uint64_t k = 0; k < 500; ++k)
        t.refOrInsert(k) = 7;
    const size_t cap = t.capacity();
    t.clear(); // generation bump, no slot wipe
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.capacity(), cap);
    for (uint64_t k = 0; k < 500; ++k)
        EXPECT_EQ(t.find(k), nullptr) << k;
    // Re-inserting after a clear default-constructs fresh values.
    EXPECT_EQ(t.refOrInsert(3), 0u);
    t.refOrInsert(3) = 9;
    EXPECT_EQ(*t.find(3), 9u);
    EXPECT_EQ(t.size(), 1u);
}

TEST(FlatTable, CollidingKeysChainAndEraseTombstonesCorrectly)
{
    // Many keys landing in a small table force probe chains; erase
    // must tombstone (keeping later chain members reachable), and a
    // reinsert may reuse the tombstone.
    FlatTable<uint64_t> t(16);
    constexpr uint64_t kKeys = 11; // under the growth watermark of 16
    for (uint64_t k = 0; k < kKeys; ++k)
        t.refOrInsert(k) = k + 100;
    ASSERT_EQ(t.capacity(), 16u);
    // Erase a middle element: everything else stays reachable.
    EXPECT_TRUE(t.erase(5));
    EXPECT_FALSE(t.erase(5));
    EXPECT_EQ(t.size(), kKeys - 1);
    for (uint64_t k = 0; k < kKeys; ++k) {
        if (k == 5)
            EXPECT_EQ(t.find(k), nullptr);
        else
            EXPECT_EQ(*t.find(k), k + 100) << k;
    }
    t.refOrInsert(5) = 205;
    EXPECT_EQ(*t.find(5), 205u);
    EXPECT_EQ(t.size(), kKeys);
}

TEST(FlatTable, EraseInsertChurnStaysConsistentAcrossRehashes)
{
    // LRU-style churn (the Hydra RCC pattern): erase + insert pairs
    // accumulate tombstones until in-place rehashes purge them.
    FlatTable<uint32_t> t(32);
    for (uint64_t k = 0; k < 20; ++k)
        t.refOrInsert(k) = static_cast<uint32_t>(k);
    for (uint64_t round = 0; round < 2000; ++round) {
        const uint64_t evict = round;
        const uint64_t insert = round + 20;
        ASSERT_TRUE(t.erase(evict)) << round;
        t.refOrInsert(insert) = static_cast<uint32_t>(insert);
        ASSERT_EQ(t.size(), 20u);
    }
    for (uint64_t k = 2000; k < 2020; ++k)
        EXPECT_EQ(*t.find(k), static_cast<uint32_t>(k));
}

TEST(HashStream, WordFoldsMatchHashSeed)
{
    // The device's fault-injection loop folds the loop-invariant
    // (seed, bank, row) prefix of its per-bit orientation hash once
    // and finishes it per attempt — valid only while HashStream's
    // fold IS hashSeed's fold. Pin that equivalence.
    const uint64_t parts[] = {0xC0FFEE, 3, 77777, 129, 0x0B17};
    HashStream h;
    for (uint64_t p : parts)
        h.mix(p);
    EXPECT_EQ(h.value(),
              hashSeed({0xC0FFEEULL, 3ULL, 77777ULL, 129ULL, 0x0B17ULL}));

    HashStream prefix;
    prefix.mix(uint64_t(0xC0FFEE)).mix(uint32_t(3)).mix(uint32_t(77777));
    HashStream resumed = prefix;
    resumed.mix(uint32_t(129)).mix(0x0B17ULL);
    EXPECT_EQ(resumed.value(), h.value());
}

TEST(FlatTable, EmptyTableAllocatesNothingUntilFirstInsert)
{
    // RowData embeds a FlatTable per DRAM row; an untouched row must
    // cost no slot-array allocation.
    FlatTable<uint64_t> t(64);
    EXPECT_EQ(t.capacity(), 0u);
    EXPECT_EQ(t.find(42), nullptr);
    EXPECT_FALSE(t.erase(42));
    t.clear(); // clear of a never-allocated table is a no-op
    EXPECT_EQ(t.capacity(), 0u);
    t.refOrInsert(42) = 7;
    EXPECT_EQ(t.capacity(), 64u);
    EXPECT_EQ(*t.find(42), 7u);
}

TEST(FlatTable, ForEachVisitsExactlyTheLiveEntries)
{
    FlatTable<uint32_t> t(16);
    for (uint64_t k = 0; k < 300; ++k)
        t.refOrInsert(k) = static_cast<uint32_t>(k * 3);
    EXPECT_TRUE(t.erase(7));
    EXPECT_TRUE(t.erase(250));
    std::map<uint64_t, uint32_t> seen;
    t.forEach([&](uint64_t k, const uint32_t &v) {
        EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate " << k;
    });
    EXPECT_EQ(seen.size(), t.size());
    for (uint64_t k = 0; k < 300; ++k) {
        if (k == 7 || k == 250) {
            EXPECT_FALSE(seen.count(k));
        } else {
            ASSERT_TRUE(seen.count(k)) << k;
            EXPECT_EQ(seen[k], static_cast<uint32_t>(k * 3));
        }
    }
    t.clear();
    size_t visited = 0;
    t.forEach([&](uint64_t, const uint32_t &) { ++visited; });
    EXPECT_EQ(visited, 0u);
}

TEST(FlatTable, ForEachOrderIsDeterministicForSameHistory)
{
    // forEach order is the slot order, which is a pure function of
    // the insertion/erase history — two tables fed the identical
    // sequence must visit in the identical order. Defense counter
    // scans and the streaming-cache fingerprints rely on this.
    auto build = [](FlatTable<uint32_t> &t) {
        Rng rng(0x0D3);
        for (int op = 0; op < 5000; ++op) {
            const uint64_t key = rng.below(800);
            if (rng.below(10) < 3)
                t.erase(key);
            else
                t.refOrInsert(key) = static_cast<uint32_t>(op);
        }
    };
    FlatTable<uint32_t> a(16), b(16);
    build(a);
    build(b);
    std::vector<std::pair<uint64_t, uint32_t>> order_a, order_b;
    a.forEach([&](uint64_t k, const uint32_t &v) {
        order_a.emplace_back(k, v);
    });
    b.forEach([&](uint64_t k, const uint32_t &v) {
        order_b.emplace_back(k, v);
    });
    ASSERT_FALSE(order_a.empty());
    EXPECT_EQ(order_a, order_b);
}

TEST(FlatTable, BatchProbesMatchSinglesUnderTombstoneChurn)
{
    // Twin tables under the erase-heavy Hydra RCT pattern: `scalar`
    // mutated one key at a time, `batch` through assignBatch, with
    // interleaved erase bursts accumulating tombstones between
    // in-place rehashes. The batch path must be indistinguishable —
    // same probe results (findBatch vs find, including misses) and
    // the same slot layout (forEach order), i.e. identical growth
    // points and tombstone reuse.
    FlatTable<uint32_t> scalar(16), batch(16);
    Rng rng(0xBA7C);
    std::vector<uint64_t> keys;
    std::vector<uint32_t *> got(64);
    for (int round = 0; round < 300; ++round) {
        // Group seeding: a contiguous run of keys, one value.
        const uint64_t base = rng.below(4000);
        const uint32_t value = static_cast<uint32_t>(rng.next());
        keys.clear();
        for (uint64_t r = 0; r < 32; ++r)
            keys.push_back(base + r);
        for (uint64_t k : keys)
            scalar.refOrInsert(k) = value;
        batch.assignBatch(keys.data(), keys.size(), value);

        // Erase burst (tombstone churn), same keys on both.
        for (int e = 0; e < 24; ++e) {
            const uint64_t k = rng.below(4000);
            EXPECT_EQ(scalar.erase(k), batch.erase(k)) << k;
        }

        // Probe a mix of present and absent keys both ways.
        keys.clear();
        for (int p = 0; p < 64; ++p)
            keys.push_back(rng.below(5000)); // ~20% guaranteed absent
        batch.findBatch(keys.data(), keys.size(), got.data());
        for (size_t i = 0; i < keys.size(); ++i) {
            const uint32_t *want = scalar.find(keys[i]);
            if (want == nullptr) {
                EXPECT_EQ(got[i], nullptr) << keys[i];
            } else {
                ASSERT_NE(got[i], nullptr) << keys[i];
                EXPECT_EQ(*got[i], *want) << keys[i];
            }
        }
    }
    EXPECT_EQ(scalar.size(), batch.size());
    EXPECT_EQ(scalar.capacity(), batch.capacity());
    std::vector<std::pair<uint64_t, uint32_t>> order_s, order_b;
    scalar.forEach([&](uint64_t k, const uint32_t &v) {
        order_s.emplace_back(k, v);
    });
    batch.forEach([&](uint64_t k, const uint32_t &v) {
        order_b.emplace_back(k, v);
    });
    EXPECT_EQ(order_s, order_b);
}

// -----------------------------------------------------------------
// WordTable (RowData's SoA word-delta store)
// -----------------------------------------------------------------

TEST(WordTable, InsertFindEraseAndGrowthKeepEveryEntry)
{
    WordTable t(8);
    for (uint32_t k = 0; k < 3000; ++k)
        t.refOrInsert(k * 7) = (uint64_t(k) << 32) | 0x5A5Au;
    EXPECT_EQ(t.size(), 3000u);
    EXPECT_GT(t.capacity(), 3000u);
    for (uint32_t k = 0; k < 3000; ++k) {
        const uint64_t *v = t.find(k * 7);
        ASSERT_NE(v, nullptr) << k;
        EXPECT_EQ(*v, (uint64_t(k) << 32) | 0x5A5Au);
    }
    EXPECT_EQ(t.find(3), nullptr);
    EXPECT_TRUE(t.erase(7));
    EXPECT_FALSE(t.erase(7));
    EXPECT_EQ(t.find(7), nullptr);
    EXPECT_EQ(t.size(), 2999u);
}

TEST(WordTable, DeadSlotsHoldZeroThroughChurnAndClear)
{
    // THE invariant the vector kernels lean on: summing over the
    // entire value array must equal summing over the live entries,
    // because every dead slot (never-used, tombstoned, or cleared)
    // holds exactly 0. Checked via the kernel itself: a base of 0
    // makes xorPopcountBase a straight popcount sum.
    WordTable t(8);
    Rng rng(0x00DD);
    for (int op = 0; op < 20000; ++op) {
        const uint32_t key = static_cast<uint32_t>(rng.below(500));
        if (rng.below(10) < 4)
            t.erase(key);
        else
            t.refOrInsert(key) = rng.next();
        if (op % 1999 == 0)
            t.clear();
    }
    uint64_t live_popcount = 0;
    size_t live = 0;
    t.forEach([&](uint32_t, uint64_t v) {
        live_popcount += std::popcount(v);
        ++live;
    });
    EXPECT_EQ(live, t.size());
    EXPECT_EQ(simd::xorPopcountBase(t.valsData(), t.capacity(), 0),
              live_popcount);
    t.clear();
    EXPECT_EQ(simd::xorPopcountBase(t.valsData(), t.capacity(), 0),
              0u);
    EXPECT_EQ(t.size(), 0u);
}

TEST(WordTable, RandomOpsMatchReferenceMap)
{
    WordTable t(8);
    std::map<uint32_t, uint64_t> ref;
    Rng rng(0x30F7);
    for (int op = 0; op < 30000; ++op) {
        const uint32_t key = static_cast<uint32_t>(rng.below(2000));
        switch (rng.below(4)) {
          case 0: {
            const bool erased_t = t.erase(key);
            EXPECT_EQ(erased_t, ref.erase(key) > 0) << key;
            break;
          }
          case 1: {
            const uint64_t *v = t.find(key);
            const auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr) << key;
            } else {
                ASSERT_NE(v, nullptr) << key;
                EXPECT_EQ(*v, it->second) << key;
            }
            break;
          }
          default: {
            const uint64_t val = rng.next();
            t.refOrInsert(key) = val;
            ref[key] = val;
            break;
          }
        }
    }
    EXPECT_EQ(t.size(), ref.size());
    size_t visited = 0;
    t.forEach([&](uint32_t k, uint64_t v) {
        const auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << k;
        EXPECT_EQ(v, it->second) << k;
        ++visited;
    });
    EXPECT_EQ(visited, ref.size());
}

// -----------------------------------------------------------------
// parallelFor (persistent pool)
// -----------------------------------------------------------------

TEST(ParallelFor, EveryIndexRunsExactlyOnceAtAnyWidth)
{
    for (unsigned threads : {1u, 2u, 5u}) {
        std::vector<std::atomic<int>> hits(1000);
        for (auto &h : hits)
            h.store(0);
        parallelFor(hits.size(), threads,
                    [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << i;
    }
}

TEST(ParallelFor, WorkerExceptionsPropagateToTheCaller)
{
    EXPECT_THROW(
        parallelFor(64, 4,
                    [&](size_t i) {
                        if (i == 13)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool survives a throwing job and runs the next one.
    std::atomic<int> total{0};
    parallelFor(64, 4, [&](size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 64);
}

} // namespace
} // namespace svard
