/**
 * @file
 * Tests for the five read-disturbance defenses + Graphene: mechanism
 * unit behaviour (probabilities, blacklists, counter traffic, swaps),
 * Svärd integration (fewer preventive actions, never more aggressive),
 * and the end-to-end security property against the behavioral device:
 * zero bitflips with a correctly configured defense, bitflips without.
 */
#include <gtest/gtest.h>

#include <memory>

#include "defense/aqua.h"
#include "defense/blockhammer.h"
#include "defense/graphene.h"
#include "defense/harness.h"
#include "defense/hydra.h"
#include "defense/para.h"
#include "defense/registry.h"
#include "defense/rrs.h"
#include "fault/vuln_model.h"
#include "sim/presets.h"

namespace svard::defense {
namespace {

using core::Svard;
using core::UniformThreshold;
using core::VulnProfile;

std::shared_ptr<UniformThreshold>
uniform(double t, uint32_t rows = 64 * 1024)
{
    return std::make_shared<UniformThreshold>(t, rows);
}

TEST(Para, ProbabilityScalesInverselyWithThreshold)
{
    Para para(uniform(1024));
    const double p1k = para.probabilityFor(1024);
    const double p4k = para.probabilityFor(4096);
    const double p64 = para.probabilityFor(64);
    EXPECT_GT(p64, p1k);
    EXPECT_GT(p1k, p4k);
    // p = 1 - target^(1/T)
    EXPECT_NEAR(p1k, 1.0 - std::pow(1e-15, 1.0 / 1024.0), 1e-9);
    EXPECT_LE(p64, 1.0);
}

TEST(Para, RefreshRateMatchesProbability)
{
    auto thr = uniform(512);
    Para para(thr, 3);
    std::vector<PreventiveAction> acts;
    uint64_t refreshes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        acts.clear();
        para.onActivate(0, 1000, 0, acts);
        refreshes += acts.size();
    }
    const double p = para.probabilityFor(512);
    // Two neighbors, each refreshed with probability p.
    EXPECT_NEAR(static_cast<double>(refreshes) / n, 2.0 * p,
                0.05 * 2.0 * p + 0.005);
}

TEST(Para, SvardRefreshesLessThanUniform)
{
    const auto &spec = dram::moduleByLabel("S0");
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    auto model = std::make_shared<fault::VulnerabilityModel>(spec, sa);
    auto prof =
        std::make_shared<VulnProfile>(VulnProfile::fromModel(*model));
    auto scaled = std::make_shared<VulnProfile>(prof->scaledTo(128.0));

    Para with_svard(std::make_shared<Svard>(scaled), 5);
    Para without(uniform(128.0, spec.rowsPerBank), 5);

    std::vector<PreventiveAction> acts;
    uint64_t svard_ref = 0, uni_ref = 0;
    for (uint32_t row = 100; row < 4100; ++row) {
        acts.clear();
        with_svard.onActivate(1, row, 0, acts);
        svard_ref += acts.size();
        acts.clear();
        without.onActivate(1, row, 0, acts);
        uni_ref += acts.size();
    }
    // Svärd's refresh rate follows the profile's threshold mix; for
    // S0 (roughly half the rows in the weakest bin) the reduction is
    // ~30%. Draw-by-draw, Svärd can never refresh more than uniform.
    EXPECT_LT(svard_ref, uni_ref * 0.85);
}

TEST(CountingBloom, NeverUndercounts)
{
    CountingBloomFilter cbf(256, 3, 42);
    for (int i = 0; i < 50; ++i)
        cbf.insert(7);
    EXPECT_GE(cbf.estimate(7), 50u);
    cbf.clear();
    EXPECT_EQ(cbf.estimate(7), 0u);
}

TEST(BlockHammer, ThrottlesRapidActivationsToOneRow)
{
    BlockHammer bh(uniform(256));
    std::vector<PreventiveAction> acts;
    uint64_t throttles = 0;
    dram::Tick now = 0;
    for (int i = 0; i < 2000; ++i) {
        acts.clear();
        bh.onActivate(0, 500, now, acts);
        for (const auto &a : acts)
            if (a.kind == PreventiveAction::Kind::Throttle) {
                ++throttles;
                now += a.delay;
            }
        now += 50 * dram::kPsPerNs;
    }
    EXPECT_GT(throttles, 0u);
    EXPECT_TRUE(bh.isBlacklisted(0, 500));
    // A cold row is not blacklisted.
    EXPECT_FALSE(bh.isBlacklisted(0, 40000));
}

TEST(BlockHammer, BenignRowsUnthrottled)
{
    BlockHammer bh(uniform(4096));
    std::vector<PreventiveAction> acts;
    dram::Tick now = 0;
    for (uint32_t row = 0; row < 4000; ++row) {
        acts.clear();
        bh.onActivate(0, row, now, acts);
        EXPECT_TRUE(acts.empty()) << "row " << row;
        now += 50 * dram::kPsPerNs;
    }
}

TEST(Hydra, GroupTrackingAvoidsCounterTrafficForColdRows)
{
    Hydra hydra(uniform(4096));
    std::vector<PreventiveAction> acts;
    for (uint32_t row = 0; row < 2000; row += 7) {
        acts.clear();
        hydra.onActivate(0, row, 0, acts);
        EXPECT_TRUE(acts.empty());
    }
    EXPECT_EQ(hydra.rccMisses(), 0u);
}

TEST(Hydra, HotGroupFallsBackToPerRowCounters)
{
    Hydra hydra(uniform(256));
    std::vector<PreventiveAction> acts;
    uint64_t refreshes = 0;
    for (int i = 0; i < 600; ++i) {
        acts.clear();
        hydra.onActivate(0, 128, 0, acts);
        for (const auto &a : acts)
            if (a.kind == PreventiveAction::Kind::RefreshRow)
                ++refreshes;
    }
    EXPECT_GT(hydra.rccMisses() + hydra.rccHits(), 0u);
    EXPECT_GT(refreshes, 0u);
}

TEST(Hydra, RccThrashingGeneratesMetadataTraffic)
{
    Hydra::Params p;
    p.rccEntries = 64;
    Hydra hydra(uniform(64), p);
    std::vector<PreventiveAction> acts;
    uint64_t metadata = 0;
    // Touch many distinct hot rows so the RCC thrashes.
    for (int round = 0; round < 40; ++round) {
        for (uint32_t row = 0; row < 512; row += 2) {
            acts.clear();
            hydra.onActivate(0, row, 0, acts);
            for (const auto &a : acts)
                if (a.kind == PreventiveAction::Kind::MetadataAccess)
                    ++metadata;
        }
    }
    EXPECT_GT(metadata, 1000u);
}

TEST(Aqua, MigratesAtHalfThresholdIntoQuarantine)
{
    Aqua aqua(uniform(1024, 64 * 1024));
    std::vector<PreventiveAction> acts;
    uint32_t migrations = 0;
    uint32_t first_dest = 0;
    for (int i = 0; i < 2100; ++i) {
        acts.clear();
        aqua.onActivate(2, 777, 0, acts);
        for (const auto &a : acts)
            if (a.kind == PreventiveAction::Kind::MigrateRow) {
                ++migrations;
                if (migrations == 1)
                    first_dest = a.row2;
                // Quarantine lives at the top 1% of the bank.
                EXPECT_GE(a.row2, 64u * 1024u - 656u);
            }
    }
    EXPECT_EQ(migrations, 4u); // 2100 / 512
    EXPECT_GT(first_dest, 0u);
}

TEST(Rrs, SwapsWithRandomPartner)
{
    Rrs rrs(uniform(512, 64 * 1024));
    std::vector<PreventiveAction> acts;
    uint32_t swaps = 0;
    for (int i = 0; i < 1024; ++i) {
        acts.clear();
        rrs.onActivate(0, 4242, 0, acts);
        for (const auto &a : acts)
            if (a.kind == PreventiveAction::Kind::SwapRows) {
                ++swaps;
                EXPECT_NE(a.row2, 4242u);
                EXPECT_LT(a.row2, 64u * 1024u);
            }
    }
    EXPECT_EQ(swaps, 4u); // every 256 activations
}

TEST(Graphene, RefreshesNeighborsAtHalfBudget)
{
    Graphene g(uniform(128));
    std::vector<PreventiveAction> acts;
    uint64_t refreshes = 0;
    for (int i = 0; i < 128; ++i) {
        acts.clear();
        g.onActivate(0, 100, 0, acts);
        refreshes += acts.size();
    }
    EXPECT_EQ(refreshes, 4u); // two triggers x two neighbors
}

TEST(Defense, EpochEndResetsCounters)
{
    Aqua aqua(uniform(1024));
    std::vector<PreventiveAction> acts;
    for (int i = 0; i < 500; ++i) {
        acts.clear();
        aqua.onActivate(0, 10, 0, acts);
    }
    aqua.onEpochEnd(0);
    for (int i = 0; i < 500; ++i) {
        acts.clear();
        aqua.onActivate(0, 10, 0, acts);
        EXPECT_TRUE(acts.empty());
    }
}

// ---------------------------------------------------------------
// Defense registry
// ---------------------------------------------------------------

TEST(Registry, EveryRegisteredNameConstructsAndObservesActivations)
{
    auto &reg = DefenseRegistry::instance();
    const auto names = reg.names();
    EXPECT_GE(names.size(), 7u); // 6 defenses + "none"
    for (const auto &name : names) {
        const DefenseContext ctx(uniform(1024), 3,
                                 /*banks_per_rank=*/16);
        auto d = reg.make(name, ctx);
        if (name == "none") {
            EXPECT_EQ(d, nullptr);
            continue;
        }
        ASSERT_NE(d, nullptr) << name;
        std::vector<PreventiveAction> acts;
        d->onActivate(0, 100, 0, acts);
        EXPECT_EQ(d->stats().activationsObserved, 1u) << name;
    }
}

TEST(Registry, LookupIsCaseInsensitive)
{
    auto &reg = DefenseRegistry::instance();
    EXPECT_TRUE(reg.contains("PARA"));
    EXPECT_TRUE(reg.contains("BlockHammer"));
    const DefenseContext ctx(uniform(1024), 1,
                             /*banks_per_rank=*/16);
    auto d = reg.make("Graphene", ctx);
    ASSERT_NE(d, nullptr);
    EXPECT_STREQ(d->name(), "Graphene");
}

TEST(Registry, UnsetBanksPerRankDiesInsteadOfMisfolding)
{
    // The bare DefenseContext constructor no longer defaults to the
    // Table 4 bank count: a context whose geometry was never derived
    // must die in the factory, not silently fold banks mod 16.
    const DefenseContext unset(uniform(1024), 3);
    EXPECT_EQ(unset.banksPerRank, 0u);
    EXPECT_DEATH(makeDefenseByName("para", unset), "banksPerRank");

    // The SimConfig overload derives the count from the geometry.
    sim::SimConfig ddr5 = sim::presets::get("ddr5-4800-32bank");
    const DefenseContext derived(ddr5, uniform(1024), 3);
    EXPECT_EQ(derived.banksPerRank, 32u);
    auto d = makeDefenseByName("para", derived);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->banksPerRank(), 32u);
}

TEST(Registry, UnknownNameThrowsWithKnownNames)
{
    const DefenseContext ctx(uniform(1024), 1,
                             /*banks_per_rank=*/16);
    EXPECT_FALSE(
        DefenseRegistry::instance().contains("not-a-defense"));
    try {
        makeDefenseByName("not-a-defense", ctx);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        // The error lists the registered names to aid sweep authors.
        EXPECT_NE(std::string(e.what()).find("para"),
                  std::string::npos);
    }
}

TEST(Registry, ContextGeometryConfiguresBankFolding)
{
    const DefenseContext ctx(uniform(1024), 1, /*banks_per_rank=*/8);
    auto d = makeDefenseByName("para", ctx);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->banksPerRank(), 8u);
}

TEST(Registry, FoldedBanksHitTheRightProfileBank)
{
    // Two-bank profile: bank 0 weak (budget 8), bank 1 strong. With
    // banksPerRank = 2, flat banks 2/3 must fold onto profile banks
    // 0/1 — the seed's hardcoded % 16 would index the profile out of
    // its bank range instead.
    VulnProfile prof("fold", 2, 64, {8.0, 4096.0});
    for (uint32_t row = 0; row < 64; ++row)
        prof.setBin(1, row, 1);
    auto svard =
        std::make_shared<Svard>(std::make_shared<VulnProfile>(prof));
    const DefenseContext ctx(svard, 1, /*banks_per_rank=*/2);

    auto weak = makeDefenseByName("graphene", ctx);
    auto strong = makeDefenseByName("graphene", ctx);
    std::vector<PreventiveAction> acts;
    uint64_t weak_ref = 0, strong_ref = 0;
    for (int i = 0; i < 16; ++i) {
        acts.clear();
        weak->onActivate(/*flat bank*/ 2, 30, 0, acts); // -> bank 0
        weak_ref += acts.size();
        acts.clear();
        strong->onActivate(/*flat bank*/ 3, 30, 0, acts); // -> bank 1
        strong_ref += acts.size();
    }
    EXPECT_GT(weak_ref, 0u);    // budget 8: refreshes by 16 ACTs
    EXPECT_EQ(strong_ref, 0u);  // budget 4096: untouched
}

// ---------------------------------------------------------------
// End-to-end security property against the behavioral device
// ---------------------------------------------------------------

struct SecurityRig
{
    explicit SecurityRig(const std::string &label)
        : spec(dram::moduleByLabel(label)),
          subarrays(std::make_shared<dram::SubarrayMap>(spec)),
          model(std::make_shared<fault::VulnerabilityModel>(spec,
                                                            subarrays)),
          device(spec, subarrays, model),
          profile(std::make_shared<VulnProfile>(
              VulnProfile::fromModel(*model)))
    {}

    uint32_t
    weakestVictimLogical(uint32_t bank) const
    {
        return device.mapping().toLogical(model->weakestRow(bank));
    }

    const dram::ModuleSpec &spec;
    std::shared_ptr<dram::SubarrayMap> subarrays;
    std::shared_ptr<fault::VulnerabilityModel> model;
    mutable dram::DramDevice device;
    std::shared_ptr<VulnProfile> profile;
};

TEST(Security, UnprotectedDeviceFlips)
{
    SecurityRig rig("S2"); // min HC_first 12K
    AttackOptions opt;
    opt.victim = rig.weakestVictimLogical(opt.bank);
    opt.refreshWindows = 1;
    const auto res = runDoubleSidedAttack(rig.device, nullptr, opt);
    EXPECT_GT(res.bitflips, 0u);
    EXPECT_GT(res.aggressorActs, 100000u);
}

class SecurityP : public ::testing::TestWithParam<const char *>
{};

TEST_P(SecurityP, DefenseAtProfileThresholdPreventsAllFlips)
{
    SecurityRig rig("S2");
    auto svard = std::make_shared<Svard>(rig.profile);
    auto defense = makeDefenseByName(
        GetParam(), DefenseContext(svard, 7, rig.spec.banks));
    ASSERT_NE(defense, nullptr);
    AttackOptions opt;
    opt.victim = rig.weakestVictimLogical(opt.bank);
    opt.refreshWindows = 2;
    opt.maxActsPerAggressor = 200 * 1024; // > any HC_first, bounded time
    const auto res =
        runDoubleSidedAttack(rig.device, defense.get(), opt);
    EXPECT_EQ(res.bitflips, 0u) << defense->name();
    // The defense actually acted (or throttled) against the attack.
    EXPECT_GT(res.preventiveRefreshes + res.throttleEvents +
                  res.migrations,
              0u)
        << defense->name();
}

INSTANTIATE_TEST_SUITE_P(AllDefenses, SecurityP,
                         ::testing::Values("para", "blockhammer",
                                           "hydra", "aqua", "rrs",
                                           "graphene"));

TEST(Security, MisconfiguredThresholdStillFlips)
{
    // Configure Graphene for a threshold 8x above the true minimum:
    // the weakest row crosses its HC_first before the defense reacts.
    SecurityRig rig("S2");
    auto bad = uniform(8.0 * rig.spec.hcFirstMin, rig.spec.rowsPerBank);
    Graphene g(bad);
    AttackOptions opt;
    opt.victim = rig.weakestVictimLogical(opt.bank);
    opt.refreshWindows = 1;
    const auto res = runDoubleSidedAttack(rig.device, &g, opt);
    EXPECT_GT(res.bitflips, 0u);
}

TEST(Security, RowPressDefeatsActivationCounting)
{
    // Beyond-paper check rooted in RowPress: with a 2us aggressor
    // on-time, far fewer activations deliver the same disturbance, so
    // a pure activation-count defense configured for 36ns hammering
    // lets bitflips through.
    SecurityRig rig("S2");
    auto svard = std::make_shared<Svard>(rig.profile);
    Graphene g(svard);
    AttackOptions opt;
    opt.victim = rig.weakestVictimLogical(opt.bank);
    opt.tAggOn = 2 * dram::kPsPerUs;
    opt.refreshWindows = 1;
    const auto res = runDoubleSidedAttack(rig.device, &g, opt);
    EXPECT_GT(res.bitflips, 0u);
}

TEST(Security, SvardActsLessThanUniformButStaysSafe)
{
    SecurityRig rig_a("S2"), rig_b("S2");
    auto svard = std::make_shared<Svard>(rig_a.profile);
    auto uni = uniform(rig_a.profile->minThreshold(),
                       rig_a.spec.rowsPerBank);

    // Attack a victim in a *strong* bin so Svärd's threshold is higher
    // than the worst case; the profile is keyed by physical rows and
    // the harness takes a logical victim address.
    uint32_t victim = 0;
    for (uint32_t p = 1000; p < 60000; ++p) {
        if (rig_a.profile->thresholdOf(1, p) >
                4.0 * rig_a.profile->minThreshold() &&
            rig_a.subarrays->disturbedNeighbors(p).size() == 2) {
            victim = rig_a.device.mapping().toLogical(p);
            break;
        }
    }
    ASSERT_GT(victim, 0u);

    Graphene with_svard(svard);
    Graphene without(uni);
    AttackOptions opt;
    opt.victim = victim;
    opt.refreshWindows = 1;
    const auto res_svard =
        runDoubleSidedAttack(rig_a.device, &with_svard, opt);
    const auto res_uni =
        runDoubleSidedAttack(rig_b.device, &without, opt);
    EXPECT_EQ(res_svard.bitflips, 0u);
    EXPECT_EQ(res_uni.bitflips, 0u);
    EXPECT_LT(res_svard.preventiveRefreshes * 2,
              res_uni.preventiveRefreshes);
}

} // namespace
} // namespace svard::defense
