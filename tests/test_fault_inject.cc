/**
 * @file
 * Tests for the deterministic fault-injection harness and the
 * recovery paths it drives: the SVARD_FAULT grammar, count-based
 * triggering, the transactional append retry (transient EIO absorbed,
 * persistent short writes surfaced with the file rolled back),
 * mid-file record resync, atomic manifest replacement, AsyncSink
 * error propagation, and the cache's graceful-degradation open.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "engine/sweep.h"
#include "fault_inject/fault_inject.h"
#include "io/async_sink.h"
#include "io/result_sink.h"
#include "io/sweep_cache.h"
#include "obs/manifest.h"

namespace svard {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "svard_faults_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
spill(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

engine::CellResult
makeRow(uint32_t i)
{
    engine::CellResult r;
    r.cell = {i, i, i, i, i};
    r.seed = 0x1000 + i;
    r.fingerprint = 0x2000 + i;
    r.geometry = "ddr4-table4";
    r.defense = "para";
    r.threshold = 128.0;
    r.provider = "NoSvard";
    r.mix = "mix-" + std::to_string(i);
    r.metrics.weightedSpeedup = 1.0 + i / 3.0;
    r.normalized.weightedSpeedup = 0.5 + i / 7.0;
    return r;
}


/** Tests below drive injected faults; in a -DSVARD_FAULTS=OFF build
 *  the harness is compiled out and they self-skip. */
#define REQUIRE_FAULTS()                                               \
    if (!faults::compiled())                                           \
    GTEST_SKIP() << "fault harness compiled out (-DSVARD_FAULTS=OFF)"

/** Every test leaves the process plan-free. */
class FaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { faults::reset(); }
};

using FaultGrammar = FaultTest;
using RetryPath = FaultTest;
using ResyncPath = FaultTest;
using ManifestAtomicity = FaultTest;
using AsyncSinkFaults = FaultTest;
using Degradation = FaultTest;

TEST_F(FaultGrammar, CountBasedOneShotAndPersistentTriggers)
{
    REQUIRE_FAULTS();
    faults::configure("p.once:eio@2,p.forever:short@1+");
    EXPECT_FALSE(faults::check("p.once"));
    EXPECT_EQ(faults::check("p.once").action, faults::Action::Eio);
    EXPECT_FALSE(faults::check("p.once")) << "one-shot refires";
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(faults::check("p.forever").action,
                  faults::Action::Short);
    EXPECT_EQ(faults::hitCount("p.once"), 3u);
    EXPECT_FALSE(faults::check("p.unlisted"));
}

TEST_F(FaultGrammar, ArgAndSummaryAndClear)
{
    REQUIRE_FAULTS();
    faults::configure("a.b:stall@3:250");
    EXPECT_NE(faults::planSummary().find("a.b"), std::string::npos);
    faults::configure("");
    EXPECT_FALSE(faults::anyActive());
    EXPECT_EQ(faults::hitCount("a.b"), 0u) << "configure resets counts";
}

TEST_F(FaultGrammar, MalformedSpecsThrow)
{
    REQUIRE_FAULTS();
    EXPECT_THROW(faults::configure("nocolon"), std::invalid_argument);
    EXPECT_THROW(faults::configure("p:badaction@1"),
                 std::invalid_argument);
    EXPECT_THROW(faults::configure("p:kill@0"),
                 std::invalid_argument);
    EXPECT_THROW(faults::configure("p:kill"), std::invalid_argument);
}

TEST_F(FaultGrammar, StallSleepsForItsArgument)
{
    REQUIRE_FAULTS();
    faults::configure("z.z:stall@1:80");
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(faults::check("z.z")) << "stall executes in check()";
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GE(ms, 70);
}

TEST_F(RetryPath, TransientEioIsAbsorbedByTheRetry)
{
    REQUIRE_FAULTS();
    const std::string path = tmpPath("transient.svc");
    std::remove(path.c_str());
    faults::configure("record.append:eio@1");
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        io::appendRecord(f, makeRow(1), path);
        io::appendRecord(f, makeRow(2), path);
        std::fclose(f);
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    const auto rows = io::readRecords(f);
    std::fclose(f);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].seed, makeRow(1).seed);
    EXPECT_GT(faults::hitCount("record.append"), 2u)
        << "the failed attempt plus retries must all consult the "
           "injection point";
}

TEST_F(RetryPath, PersistentShortWriteRollsTheFileBack)
{
    REQUIRE_FAULTS();
    const std::string path = tmpPath("shortwrite.svc");
    std::remove(path.c_str());
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    io::appendRecord(f, makeRow(1), path);
    std::fflush(f);
    const std::string before = slurp(path);

    faults::configure("record.append:short@1+");
    EXPECT_THROW(io::appendRecord(f, makeRow(2), path),
                 std::runtime_error);
    std::fclose(f);
    // The transaction truncated the partial garbage away: the file
    // holds exactly the pre-failure bytes and still loads cleanly.
    EXPECT_EQ(slurp(path), before);
    faults::reset();
    f = std::fopen(path.c_str(), "rb");
    const auto rows = io::readRecords(f);
    std::fclose(f);
    ASSERT_EQ(rows.size(), 1u);
}

TEST_F(ResyncPath, MidFileCorruptionResyncsOntoTheNextRecord)
{
    const std::string path = tmpPath("resync.svc");
    std::remove(path.c_str());
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    io::appendRecord(f, makeRow(1), path);
    std::fflush(f);
    const size_t first_end = static_cast<size_t>(std::ftell(f));
    io::appendRecord(f, makeRow(2), path);
    std::fclose(f);

    const std::string intact = slurp(path);
    const std::string garbage = "GARBAGE-NO-MAGIC-HERE";
    spill(path, intact.substr(0, first_end) + garbage +
                    intact.substr(first_end));

    f = std::fopen(path.c_str(), "rb");
    io::RecordReadStats stats;
    const auto rows = io::readRecords(f, &stats);
    std::fclose(f);
    ASSERT_EQ(rows.size(), 2u) << "the record after the damage must "
                                  "survive";
    EXPECT_EQ(rows[1].seed, makeRow(2).seed);
    EXPECT_EQ(stats.resyncs, 1u);
    EXPECT_EQ(stats.droppedBytes, garbage.size());
    EXPECT_EQ(stats.validBytes, intact.size() + garbage.size());
}

TEST_F(ResyncPath, TornTailIsTruncatedNotCountedAsDamage)
{
    const std::string path = tmpPath("torntail.svc");
    std::remove(path.c_str());
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    io::appendRecord(f, makeRow(1), path);
    std::fflush(f);
    const size_t intact_end = static_cast<size_t>(std::ftell(f));
    io::appendRecord(f, makeRow(2), path);
    std::fclose(f);
    const std::string full = slurp(path);
    // Chop the second record mid-frame: what a kill mid-append leaves.
    spill(path, full.substr(0, intact_end + 9));

    f = std::fopen(path.c_str(), "rb");
    io::RecordReadStats stats;
    const auto rows = io::readRecords(f, &stats);
    std::fclose(f);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(stats.validBytes, intact_end);
    EXPECT_EQ(stats.droppedBytes, 0u) << "tail truncation is routine "
                                         "crash recovery, not damage";
    EXPECT_EQ(stats.resyncs, 0u);

    // SweepCache repairs the tail on open and appends cleanly after.
    io::SweepCache cache(path);
    EXPECT_EQ(cache.size(), 1u);
    cache.store(makeRow(3));
    io::SweepCache again(path);
    EXPECT_EQ(again.size(), 2u);
}

TEST_F(ManifestAtomicity, FailedRewriteLeavesTheOldManifestIntact)
{
    REQUIRE_FAULTS();
    const std::string path = tmpPath("manifest.json");
    obs::RunManifest m;
    m.kind = "sweep";
    m.specFingerprint = 0xAB;
    ASSERT_TRUE(obs::writeManifest(path, m, obs::snapshot()));
    const std::string before = slurp(path);

    faults::configure("manifest.write:eio@1");
    m.specFingerprint = 0xCD;
    EXPECT_FALSE(obs::writeManifest(path, m, obs::snapshot()));
    // tmp+rename: the failed write never touches the published file,
    // and no orphan temp survives.
    EXPECT_EQ(slurp(path), before);
    EXPECT_NE(std::remove((path + ".tmp").c_str()), 0)
        << "failed writes must clean up their temp file";

    faults::reset();
    obs::RunManifest r;
    std::string err;
    ASSERT_TRUE(obs::readManifest(path, &r, &err)) << err;
    EXPECT_EQ(r.specFingerprint, 0xABu);
}

TEST_F(AsyncSinkFaults, PersistentWriteFaultReachesTheProducer)
{
    REQUIRE_FAULTS();
    const std::string path = tmpPath("asyncsink.csv");
    std::remove(path.c_str());
    faults::configure("sink.write:eio@1+");
    auto sink = std::make_shared<io::AsyncSink>(
        std::make_unique<io::CsvSink>(path));
    sink->write(makeRow(1));
    // The writer thread exhausts its retry budget; the latched error
    // must surface on the producer side rather than vanish.
    EXPECT_THROW(
        {
            for (int i = 0; i < 64; ++i)
                sink->write(makeRow(2 + i));
            sink->flush();
        },
        std::runtime_error);
}

TEST_F(AsyncSinkFaults, TransientWriteFaultIsInvisible)
{
    REQUIRE_FAULTS();
    const std::string path = tmpPath("asyncsink_ok.csv");
    std::remove(path.c_str());
    faults::configure("sink.write:eio@2");
    {
        io::AsyncSink sink(std::make_unique<io::CsvSink>(path));
        for (uint32_t i = 0; i < 4; ++i)
            sink.write(makeRow(i));
        sink.flush();
    }
    // Header + 4 rows despite the injected hiccup.
    const std::string text = slurp(path);
    size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 5u);
}

TEST_F(Degradation, OpenOrNullWarnsInsteadOfThrowing)
{
    auto cache = io::SweepCache::openOrNull(
        "/nonexistent-svard-dir/cache.svc");
    EXPECT_EQ(cache, nullptr);
    const std::string ok_path = tmpPath("degrade_ok.svc");
    std::remove(ok_path.c_str()); // a stale old-format file is fatal
    auto ok = io::SweepCache::openOrNull(ok_path);
    ASSERT_NE(ok, nullptr);
    ok->store(makeRow(1));
    EXPECT_EQ(ok->size(), 1u);
}

TEST_F(Degradation, FsyncOptInStoresAndReloads)
{
    const std::string path = tmpPath("fsync.svc");
    std::remove(path.c_str());
    ::setenv("SVARD_CACHE_FSYNC", "1", 1);
    {
        io::SweepCache cache(path);
        cache.store(makeRow(1));
        cache.store(makeRow(2));
    }
    ::unsetenv("SVARD_CACHE_FSYNC");
    io::SweepCache cache(path);
    EXPECT_EQ(cache.size(), 2u);
    engine::CellResult out;
    EXPECT_TRUE(
        cache.lookup(makeRow(2).seed, makeRow(2).fingerprint, &out));
    EXPECT_DOUBLE_EQ(out.normalized.weightedSpeedup,
                     makeRow(2).normalized.weightedSpeedup);
}

} // namespace
} // namespace svard
