/**
 * @file
 * Dense-oracle tests for the SIMD batch kernels (common/simd.h).
 *
 * Every kernel is checked for exact equality against an independent
 * naive reference, under EVERY implementation available in this
 * binary on this host (runtime dispatch forced per test via
 * setImpl). Sizes cover empty inputs, sub-vector-width tails, and
 * non-multiple-of-lane lengths, because the tail handling is where
 * vector kernels rot.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "common/flat_table.h"
#include "common/rng.h"
#include "common/simd.h"

using namespace svard;

namespace {

/** Run `fn` once per available implementation, restoring dispatch. */
template <typename Fn>
void
forEachImpl(Fn &&fn)
{
    const simd::Impl before = simd::activeImpl();
    for (simd::Impl impl : simd::availableImpls()) {
        ASSERT_TRUE(simd::setImpl(impl));
        fn(impl);
    }
    ASSERT_TRUE(simd::setImpl(before));
}

std::vector<uint64_t>
randomWords(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> out(n);
    for (auto &w : out)
        w = rng.next();
    return out;
}

const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16,
                         17, 31, 63, 64, 65, 100, 1024, 1031};

} // namespace

TEST(SimdDispatch, ScalarAlwaysAvailableAndForceable)
{
    const auto impls = simd::availableImpls();
    ASSERT_FALSE(impls.empty());
    EXPECT_NE(std::find(impls.begin(), impls.end(),
                        simd::Impl::Scalar),
              impls.end());
    // The active implementation must be one of the available ones.
    EXPECT_NE(std::find(impls.begin(), impls.end(),
                        simd::activeImpl()),
              impls.end());
    // Forcing an available implementation succeeds and sticks.
    for (simd::Impl impl : impls) {
        EXPECT_TRUE(simd::setImpl(impl));
        EXPECT_EQ(simd::activeImpl(), impl);
    }
#if !defined(__aarch64__)
    EXPECT_FALSE(simd::setImpl(simd::Impl::Neon));
#endif
    EXPECT_TRUE(simd::setImpl(impls.front()));
}

TEST(SimdDispatch, ImplNames)
{
    EXPECT_STREQ(simd::implName(simd::Impl::Scalar), "scalar");
    EXPECT_STREQ(simd::implName(simd::Impl::Avx2), "avx2");
    EXPECT_STREQ(simd::implName(simd::Impl::Neon), "neon");
}

TEST(SimdXorPopcountBase, MatchesNaiveOracle)
{
    for (size_t n : kSizes) {
        const auto words = randomWords(n, 0xABC0 + n);
        for (uint64_t base :
             {uint64_t(0), uint64_t(0xAAAAAAAAAAAAAAAAULL),
              uint64_t(0xFF00FF00FF00FF00ULL), ~uint64_t(0)}) {
            uint64_t want = 0;
            for (uint64_t w : words)
                want += std::popcount(w ^ base);
            forEachImpl([&](simd::Impl impl) {
                EXPECT_EQ(simd::xorPopcountBase(words.data(), n, base),
                          want)
                    << "n=" << n << " impl=" << simd::implName(impl);
            });
        }
    }
}

TEST(SimdXorPopcount, MatchesNaiveOracle)
{
    for (size_t n : kSizes) {
        const auto a = randomWords(n, 0xA0 + n);
        const auto b = randomWords(n, 0xB0 + n);
        uint64_t want = 0;
        for (size_t i = 0; i < n; ++i)
            want += std::popcount(a[i] ^ b[i]);
        forEachImpl([&](simd::Impl impl) {
            EXPECT_EQ(simd::xorPopcount(a.data(), b.data(), n), want)
                << "n=" << n << " impl=" << simd::implName(impl);
        });
    }
}

TEST(SimdHashBatch, MatchesSplitmixFinalizer)
{
    // Independent reference: the splitmix64 finalizer spelled out,
    // matching FlatTable's documented slot hash.
    auto reference = [](uint64_t key) {
        uint64_t z = key + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    for (size_t n : kSizes) {
        auto keys = randomWords(n, 0x4a5 + n);
        // Include adversarial values among the random ones.
        if (n >= 3) {
            keys[0] = 0;
            keys[1] = ~uint64_t(0);
            keys[2] = (uint64_t(7) << 32) | 123456;
        }
        std::vector<uint64_t> want(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = reference(keys[i]);
        forEachImpl([&](simd::Impl impl) {
            std::vector<uint64_t> got(n, 0xdead);
            simd::hashBatch(keys.data(), got.data(), n);
            EXPECT_EQ(got, want)
                << "n=" << n << " impl=" << simd::implName(impl);
        });
    }
}

TEST(SimdMinNeighbors, MatchesScalarFoldExactly)
{
    Rng rng(99);
    for (size_t n : kSizes) {
        if (n == 0)
            continue;
        std::vector<double> thr(n);
        for (auto &t : thr)
            t = 64.0 + rng.uniform() * 1e5;
        const double edge = 1e12;
        std::vector<double> want(n);
        for (size_t i = 0; i < n; ++i) {
            double b = edge;
            if (i > 0)
                b = std::min(b, thr[i - 1]);
            if (i + 1 < n)
                b = std::min(b, thr[i + 1]);
            want[i] = b;
        }
        forEachImpl([&](simd::Impl impl) {
            std::vector<double> got(n, -1.0);
            simd::minNeighborsBatch(thr.data(), n, edge, edge,
                                    got.data());
            EXPECT_EQ(got, want)
                << "n=" << n << " impl=" << simd::implName(impl);
        });
    }
}

TEST(SimdHashSeedTail, MatchesHashSeed)
{
    for (uint64_t salt : {uint64_t(0xB10C1), uint64_t(0xB10C2),
                          uint64_t(0), ~uint64_t(0)}) {
        for (uint64_t tail :
             {uint64_t(0), uint64_t((uint64_t(3) << 32) | 777),
              ~uint64_t(0)}) {
            for (size_t n : {size_t(0), size_t(1), size_t(2),
                             size_t(3), size_t(4), size_t(5),
                             size_t(8), size_t(13)}) {
                std::vector<uint64_t> want(n);
                for (size_t i = 0; i < n; ++i)
                    want[i] = hashSeed({salt, i, tail});
                forEachImpl([&](simd::Impl impl) {
                    std::vector<uint64_t> got(n, 0xdead);
                    simd::hashSeedTailBatch(salt, tail, got.data(), n);
                    EXPECT_EQ(got, want)
                        << "n=" << n
                        << " impl=" << simd::implName(impl);
                });
            }
        }
    }
}
