/**
 * @file
 * Unit tests for the DRAM substrate: timing presets, the module
 * database (Table 5), subarray maps, row scrambling, sparse row data,
 * and the behavioral device's disturbance mechanics.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <memory>
#include <set>

#include "bender/test_session.h"
#include "common/rng.h"
#include "common/simd.h"
#include "dram/device.h"
#include "dram/module_spec.h"
#include "dram/rowdata.h"
#include "dram/rowmap.h"
#include "dram/subarray.h"
#include "dram/timing.h"
#include "fault/vuln_model.h"

namespace svard::dram {
namespace {

TEST(Timing, PresetsScaleWithDataRate)
{
    const auto t3200 = ddr4Timing(3200);
    const auto t2400 = ddr4Timing(2400);
    EXPECT_LT(t3200.tCK, t2400.tCK);
    EXPECT_EQ(t3200.tRC, t3200.tRAS + t3200.tRP);
    EXPECT_GE(t3200.tFAW, 4 * t3200.tRRD_S);
    EXPECT_GT(t3200.tREFW, t3200.tREFI * 1000);
}

TEST(ModuleSpec, FifteenModulesInPaperOrder)
{
    const auto &mods = allModules();
    ASSERT_EQ(mods.size(), 15u);
    const char *expected[] = {"H0", "H1", "H2", "H3", "H4",
                              "M0", "M1", "M2", "M3", "M4",
                              "S0", "S1", "S2", "S3", "S4"};
    for (size_t i = 0; i < 15; ++i)
        EXPECT_EQ(mods[i].label, expected[i]);
}

TEST(ModuleSpec, Table5IdentityColumns)
{
    const auto &m0 = moduleByLabel("M0");
    EXPECT_EQ(m0.vendor, Vendor::Micron);
    EXPECT_EQ(m0.dataRateMts, 3200);
    EXPECT_EQ(m0.rowsPerBank, 128u * 1024u);
    EXPECT_EQ(m0.hcFirstMin, 8 * 1024);
    EXPECT_EQ(m0.hcFirstMax, 40 * 1024);

    const auto &s3 = moduleByLabel("S3");
    EXPECT_EQ(s3.vendor, Vendor::Samsung);
    EXPECT_EQ(s3.rowsPerBank, 32u * 1024u);
    EXPECT_EQ(s3.densityGb, 4);
}

TEST(ModuleSpec, HcBoundsAreOrdered)
{
    for (const auto &m : allModules()) {
        EXPECT_LT(m.hcFirstMin, m.hcFirstAvg) << m.label;
        EXPECT_LT(m.hcFirstAvg, m.hcFirstMax) << m.label;
        EXPECT_GT(m.berMean, 0.0) << m.label;
    }
}

TEST(ModuleSpec, OnlyTable3ModulesHaveFeatureEffects)
{
    const std::set<std::string> with_features = {"S0", "S1", "S3", "S4"};
    for (const auto &m : allModules()) {
        if (with_features.count(m.label))
            EXPECT_FALSE(m.featureEffects.empty()) << m.label;
        else
            EXPECT_TRUE(m.featureEffects.empty()) << m.label;
    }
}

TEST(ModuleSpec, TestedHammerCountsMatchAlg1)
{
    const auto &hcs = testedHammerCounts();
    ASSERT_EQ(hcs.size(), 14u);
    EXPECT_EQ(hcs.front(), 1024);
    EXPECT_EQ(hcs.back(), 128 * 1024);
    for (size_t i = 1; i < hcs.size(); ++i)
        EXPECT_LT(hcs[i - 1], hcs[i]);
}

TEST(SubarrayMap, CoversBankWithPaperSizedSubarrays)
{
    for (const auto &m : allModules()) {
        SubarrayMap map(m);
        EXPECT_EQ(map.rows(), m.rowsPerBank) << m.label;
        uint32_t covered = 0;
        for (uint32_t s = 0; s < map.numSubarrays(); ++s) {
            // Paper range is 330..1027; the final subarray may absorb
            // a short remainder and run slightly larger.
            EXPECT_GE(map.subarraySize(s), 330u) << m.label;
            EXPECT_LE(map.subarraySize(s), 1027u + 330u) << m.label;
            EXPECT_EQ(map.subarrayBase(s), covered);
            covered += map.subarraySize(s);
        }
        EXPECT_EQ(covered, m.rowsPerBank);
        // Paper Sec. 5.4.1: 32..206 subarrays per bank.
        EXPECT_GE(map.numSubarrays(), 32u) << m.label;
        EXPECT_LE(map.numSubarrays(), 400u) << m.label;
    }
}

TEST(SubarrayMap, LocateRoundTrips)
{
    SubarrayMap map(moduleByLabel("S0"));
    for (uint32_t row : {0u, 1u, 511u, 512u, 40000u, map.rows() - 1}) {
        const auto loc = map.locate(row);
        EXPECT_EQ(map.subarrayBase(loc.subarray) + loc.offset, row);
        EXPECT_LT(loc.offset, loc.size);
    }
}

TEST(SubarrayMap, EdgeRowsHaveOneNeighbor)
{
    SubarrayMap map(moduleByLabel("H4"));
    for (uint32_t s = 0; s < std::min(map.numSubarrays(), 8u); ++s) {
        const uint32_t base = map.subarrayBase(s);
        const uint32_t last = base + map.subarraySize(s) - 1;
        EXPECT_EQ(map.disturbedNeighbors(base).size(), 1u);
        EXPECT_EQ(map.disturbedNeighbors(last).size(), 1u);
        EXPECT_EQ(map.disturbedNeighbors(base + 1).size(), 2u);
    }
}

TEST(SubarrayMap, NeighborsStayInSubarray)
{
    SubarrayMap map(moduleByLabel("M2"));
    for (uint32_t row = 0; row < 4096; row += 37) {
        for (uint32_t n : map.disturbedNeighbors(row))
            EXPECT_TRUE(map.sameSubarray(row, n));
    }
}

class RowMappingP : public ::testing::TestWithParam<int>
{};

TEST_P(RowMappingP, BijectiveOnFullBank)
{
    const uint32_t rows = 4096;
    RowMapping map(GetParam(), rows);
    std::vector<bool> seen(rows, false);
    for (uint32_t r = 0; r < rows; ++r) {
        const uint32_t p = map.toPhysical(r);
        ASSERT_LT(p, rows);
        EXPECT_FALSE(seen[p]) << "collision at " << r;
        seen[p] = true;
        EXPECT_EQ(map.toLogical(p), r);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RowMappingP,
                         ::testing::Values(0, 1, 2));

TEST(RowMapping, MirrorPairsSwaps2And3)
{
    RowMapping map(RowMapping::Scheme::MirrorPairs, 64);
    EXPECT_EQ(map.toPhysical(0), 0u);
    EXPECT_EQ(map.toPhysical(1), 1u);
    EXPECT_EQ(map.toPhysical(2), 3u);
    EXPECT_EQ(map.toPhysical(3), 2u);
    EXPECT_EQ(map.toPhysical(6), 7u);
}

TEST(RowData, FillAndExceptions)
{
    RowData rd(64, 0xAA);
    EXPECT_EQ(rd.readByte(3), 0xAA);
    rd.writeByte(3, 0x00);
    EXPECT_EQ(rd.readByte(3), 0x00);
    EXPECT_EQ(rd.exceptionCount(), 1u);
    rd.writeByte(3, 0xAA); // writing the fill removes the exception
    EXPECT_EQ(rd.exceptionCount(), 0u);
}

TEST(RowData, MismatchedBitsCountsPopcount)
{
    RowData rd(8, 0x00);
    EXPECT_EQ(rd.mismatchedBits(0x00), 0u);
    EXPECT_EQ(rd.mismatchedBits(0xFF), 64u);
    rd.flipBit(0);
    rd.flipBit(9);
    EXPECT_EQ(rd.mismatchedBits(0x00), 2u);
}

TEST(RowData, BitAccess)
{
    RowData rd(4, 0x00);
    EXPECT_FALSE(rd.bitAt(17));
    rd.flipBit(17);
    EXPECT_TRUE(rd.bitAt(17));
    rd.flipBit(17);
    EXPECT_FALSE(rd.bitAt(17));
}

/**
 * Dense byte-vector oracle for RowData: every operation applied to
 * both, every observable compared. Guards the word-level (uint64)
 * exception store against off-by-one/masking bugs, including rows
 * whose byte count is not a multiple of the word size.
 */
class RowDataOracle
{
  public:
    RowDataOracle(uint32_t bytes, uint8_t fill)
        : rd_(bytes, fill), dense_(bytes, fill)
    {}

    void
    setFill(uint8_t fill)
    {
        rd_.setFill(fill);
        std::fill(dense_.begin(), dense_.end(), fill);
    }

    void
    writeByte(uint32_t i, uint8_t v)
    {
        rd_.writeByte(i, v);
        dense_[i] = v;
    }

    void
    flipBit(uint32_t bit)
    {
        rd_.flipBit(bit);
        dense_[bit >> 3] ^= uint8_t(1u << (bit & 7));
    }

    void
    check(uint8_t expected_fill) const
    {
        uint64_t mismatched = 0;
        size_t exceptions = 0;
        const uint8_t fill = rd_.fill();
        for (uint32_t i = 0; i < dense_.size(); ++i) {
            ASSERT_EQ(rd_.readByte(i), dense_[i]) << "byte " << i;
            mismatched += std::popcount(
                uint8_t(dense_[i] ^ expected_fill));
            if (dense_[i] != fill)
                ++exceptions;
        }
        for (uint32_t b = 0; b < dense_.size() * 8; b += 3)
            ASSERT_EQ(rd_.bitAt(b),
                      bool((dense_[b >> 3] >> (b & 7)) & 1))
                << "bit " << b;
        EXPECT_EQ(rd_.mismatchedBits(expected_fill), mismatched);
        EXPECT_EQ(rd_.exceptionCount(), exceptions);
        EXPECT_EQ(rd_.toBytes(), dense_);
    }

  private:
    RowData rd_;
    std::vector<uint8_t> dense_;
};

TEST(RowData, WordStoreMatchesDenseOracleUnderRandomOps)
{
    // 20 and 131 exercise partial tail words; 64 and 8192 full words.
    for (uint32_t bytes : {20u, 64u, 131u, 8192u}) {
        RowDataOracle o(bytes, 0xAA);
        Rng rng(hashSeed({0x20DA7A, bytes}));
        uint8_t fill = 0xAA;
        for (int op = 0; op < 4000; ++op) {
            switch (rng.below(20)) {
              case 0: // occasional refill (pattern re-init)
                fill = static_cast<uint8_t>(rng.below(256));
                o.setFill(fill);
                break;
              case 1:
              case 2:
                o.writeByte(static_cast<uint32_t>(rng.below(bytes)),
                            static_cast<uint8_t>(rng.below(256)));
                break;
              default: // bit flips dominate, as in fault injection
                o.flipBit(
                    static_cast<uint32_t>(rng.below(bytes * 8)));
                break;
            }
        }
        o.check(fill);
        o.check(0x00);
        o.check(0xFF);
        o.check(uint8_t(fill ^ 0x55));
    }
}

TEST(RowData, FlipBitIfOnlyFlipsMatchingBits)
{
    RowData rd(32, 0x00);
    EXPECT_FALSE(rd.flipBitIf(100, true));  // bit holds 0
    EXPECT_FALSE(rd.bitAt(100));
    EXPECT_TRUE(rd.flipBitIf(100, false));  // 0 -> 1
    EXPECT_TRUE(rd.bitAt(100));
    EXPECT_FALSE(rd.flipBitIf(100, false)); // now holds 1
    EXPECT_TRUE(rd.flipBitIf(100, true));   // 1 -> back to 0
    EXPECT_FALSE(rd.bitAt(100));
    EXPECT_EQ(rd.mismatchedBits(0x00), 0u);
    EXPECT_EQ(rd.exceptionCount(), 0u);
}

TEST(RowData, MismatchedBitsIdenticalAcrossSimdImpls)
{
    // The mismatch count must not depend on which vector
    // implementation the dispatcher picked — and must equal the
    // byte-level truth. 131 exercises the masked partial tail word.
    for (uint32_t bytes : {64u, 131u, 8192u}) {
        RowData rd(bytes, 0x55);
        Rng rng(hashSeed({0x51D, bytes}));
        for (int i = 0; i < 300; ++i)
            rd.flipBit(static_cast<uint32_t>(rng.below(bytes * 8)));
        for (uint8_t expected : {uint8_t(0x55), uint8_t(0x00),
                                 uint8_t(0xFF), uint8_t(0xA5)}) {
            const auto dense = rd.toBytes();
            uint64_t truth = 0;
            for (uint8_t b : dense)
                truth += std::popcount(uint8_t(b ^ expected));
            const simd::Impl before = simd::activeImpl();
            for (simd::Impl impl : simd::availableImpls()) {
                ASSERT_TRUE(simd::setImpl(impl));
                EXPECT_EQ(rd.mismatchedBits(expected), truth)
                    << "bytes=" << bytes
                    << " impl=" << simd::implName(impl);
            }
            ASSERT_TRUE(simd::setImpl(before));
        }
    }
}

// ---------------------------------------------------------------
// Device-level disturbance mechanics
// ---------------------------------------------------------------

class DeviceTest : public ::testing::Test
{
  protected:
    DeviceTest()
        : spec_(moduleByLabel("S0")),
          subarrays_(std::make_shared<SubarrayMap>(spec_)),
          model_(std::make_shared<fault::VulnerabilityModel>(spec_,
                                                             subarrays_)),
          device_(spec_, subarrays_, model_)
    {}

    /** A victim (logical) with two same-subarray neighbors. */
    uint32_t
    interiorVictim() const
    {
        for (uint32_t r = 2; r < 4096; ++r) {
            const uint32_t phys = device_.mapping().toPhysical(r);
            if (subarrays_->disturbedNeighbors(phys).size() == 2)
                return r;
        }
        return 2;
    }

    const ModuleSpec &spec_;
    std::shared_ptr<SubarrayMap> subarrays_;
    std::shared_ptr<fault::VulnerabilityModel> model_;
    DramDevice device_;
};

TEST_F(DeviceTest, ActPreTracksOpenRow)
{
    EXPECT_FALSE(device_.openRow(0).has_value());
    device_.activate(0, 100, 0);
    ASSERT_TRUE(device_.openRow(0).has_value());
    EXPECT_EQ(*device_.openRow(0), 100u);
    device_.precharge(0, 50000);
    EXPECT_FALSE(device_.openRow(0).has_value());
}

TEST_F(DeviceTest, HammerAccumulatesOnNeighbors)
{
    const uint32_t victim = interiorVictim();
    const uint32_t phys = device_.mapping().toPhysical(victim);
    const auto neigh = subarrays_->disturbedNeighbors(phys);
    ASSERT_EQ(neigh.size(), 2u);
    const uint32_t aggr = device_.mapping().toLogical(neigh[0]);

    device_.hammer(0, aggr, 1000, 36 * kPsPerNs, 0);
    // Each ACT at minimum on-time contributes ~0.5 effective hammers.
    const double pending = device_.pendingHammers(0, victim);
    EXPECT_GT(pending, 300.0);
    EXPECT_LT(pending, 700.0);
}

TEST_F(DeviceTest, ActivationOfVictimResetsAccumulation)
{
    const uint32_t victim = interiorVictim();
    const uint32_t phys = device_.mapping().toPhysical(victim);
    const uint32_t aggr = device_.mapping().toLogical(
        subarrays_->disturbedNeighbors(phys)[0]);
    device_.hammer(0, aggr, 1000, 36 * kPsPerNs, 0);
    EXPECT_GT(device_.pendingHammers(0, victim), 0.0);
    device_.activate(0, victim, 0);
    device_.precharge(0, 50000);
    EXPECT_DOUBLE_EQ(device_.pendingHammers(0, victim), 0.0);
}

TEST_F(DeviceTest, BelowThresholdNoBitflips)
{
    const uint32_t victim = interiorVictim();
    const uint32_t phys = device_.mapping().toPhysical(victim);
    const auto neigh = subarrays_->disturbedNeighbors(phys);
    device_.activate(0, victim, 0);
    device_.writeRowFill(0, victim, 0x00);
    device_.precharge(0, 50000);
    for (uint32_t n : neigh) {
        const uint32_t ln = device_.mapping().toLogical(n);
        device_.activate(0, ln, 0);
        device_.writeRowFill(0, ln, 0xFF);
        device_.precharge(0, 50000);
    }
    // S0's minimum HC_first is 32K hammers; 1K hammers is safely below.
    for (uint32_t n : neigh)
        device_.hammer(0, device_.mapping().toLogical(n), 1024,
                       36 * kPsPerNs, 0);
    EXPECT_EQ(device_.countMismatchedBits(0, victim, 0x00), 0u);
}

TEST_F(DeviceTest, MassiveHammeringFlipsBits)
{
    const uint32_t victim = interiorVictim();
    const uint32_t phys = device_.mapping().toPhysical(victim);
    const auto neigh = subarrays_->disturbedNeighbors(phys);
    ASSERT_EQ(neigh.size(), 2u);
    device_.activate(0, victim, 0);
    device_.writeRowFill(0, victim, 0x00);
    device_.precharge(0, 50000);
    for (uint32_t n : neigh) {
        const uint32_t ln = device_.mapping().toLogical(n);
        device_.activate(0, ln, 0);
        device_.writeRowFill(0, ln, 0xFF);
        device_.precharge(0, 50000);
    }
    // 512K activations per aggressor = 512K hammers >> any S0 HC_first.
    for (uint32_t n : neigh)
        device_.hammer(0, device_.mapping().toLogical(n), 512 * 1024,
                       36 * kPsPerNs, 0);
    EXPECT_GT(device_.countMismatchedBits(0, victim, 0x00), 0u);
    EXPECT_GT(device_.stats().bitflipsInjected, 0u);
}

TEST_F(DeviceTest, DisturbanceDisableSuppressesFlips)
{
    device_.setDisturbanceEnabled(false);
    const uint32_t victim = interiorVictim();
    const uint32_t phys = device_.mapping().toPhysical(victim);
    for (uint32_t n : subarrays_->disturbedNeighbors(phys))
        device_.hammer(0, device_.mapping().toLogical(n), 512 * 1024,
                       36 * kPsPerNs, 0);
    EXPECT_EQ(device_.countMismatchedBits(0, victim, 0x00), 0u);
}

TEST_F(DeviceTest, RefreshWipesSubThresholdDisturbance)
{
    const uint32_t victim = interiorVictim();
    const uint32_t phys = device_.mapping().toPhysical(victim);
    const uint32_t aggr = device_.mapping().toLogical(
        subarrays_->disturbedNeighbors(phys)[0]);
    device_.hammer(0, aggr, 1000, 36 * kPsPerNs, 0);
    device_.refreshAllRows(0);
    EXPECT_DOUBLE_EQ(device_.pendingHammers(0, victim), 0.0);
    EXPECT_EQ(device_.countMismatchedBits(0, victim, 0x00), 0u);
}

TEST_F(DeviceTest, RowPressLongerOnTimeDisturbsMore)
{
    const uint32_t victim = interiorVictim();
    const uint32_t phys = device_.mapping().toPhysical(victim);
    const uint32_t aggr = device_.mapping().toLogical(
        subarrays_->disturbedNeighbors(phys)[0]);
    device_.hammer(0, aggr, 1000, 36 * kPsPerNs, 0);
    const double short_on = device_.pendingHammers(0, victim);
    device_.refreshAllRows(0);
    device_.hammer(0, aggr, 1000, 2 * kPsPerUs, 0);
    const double long_on = device_.pendingHammers(0, victim);
    EXPECT_GT(long_on, 3.0 * short_on);
}

TEST_F(DeviceTest, RowCloneWithinSubarrayCopies)
{
    // Find an intra-subarray pair for which the margin works.
    const auto &map = *subarrays_;
    for (uint32_t s = 0; s < 4; ++s) {
        const uint32_t base = map.subarrayBase(s);
        const uint32_t src = device_.mapping().toLogical(base + 5);
        const uint32_t dst = device_.mapping().toLogical(base + 9);
        device_.activate(0, src, 0);
        device_.writeRowFill(0, src, 0x5A);
        device_.precharge(0, 50000);
        if (device_.rowClone(0, src, dst, 0)) {
            EXPECT_EQ(device_.countMismatchedBits(0, dst, 0x5A), 0u);
            return;
        }
    }
    GTEST_SKIP() << "no working RowClone pair in first subarrays";
}

TEST_F(DeviceTest, RowCloneAcrossSubarraysFails)
{
    const auto &map = *subarrays_;
    ASSERT_GE(map.numSubarrays(), 2u);
    const uint32_t src = device_.mapping().toLogical(map.subarrayBase(0));
    const uint32_t dst = device_.mapping().toLogical(map.subarrayBase(1));
    EXPECT_FALSE(device_.rowClone(0, src, dst, 0));
}

TEST_F(DeviceTest, StatsCountCommands)
{
    device_.activate(0, 10, 0);
    device_.precharge(0, 50000);
    device_.hammer(0, 10, 100, 36 * kPsPerNs, 0);
    EXPECT_EQ(device_.stats().activates, 101u);
    EXPECT_EQ(device_.stats().precharges, 101u);
}

/**
 * Flip-placement determinism regression: realize() must inject the
 * EXACT same bit flips for a given (module, seed, pattern, hammer
 * count) forever. The pinned digests were captured from the
 * pre-batching per-flip implementation, so they also prove the
 * batched word-staging path (and the hoisted orientation hash) is
 * bit-identical to it — not merely self-consistent.
 */
TEST(Disturbance, FlipPlacementPinnedAcrossImplementations)
{
    struct Case
    {
        const char *label;
        uint32_t bank;
        uint32_t victim;
        uint8_t victimFill;
        uint8_t aggrFill;
        uint64_t hammers;
        uint64_t flips;
        uint64_t digest;
    };
    // Spans three modules (Samsung/Hynix/Micron models), row-stripe /
    // checkerboard-ish fills, and flip volumes from single digits to
    // thousands (the thousands case exercises multi-flip-per-word
    // staging and flip/counter-flip collisions).
    const Case cases[] = {
        {"S0", 1, 5000, 0x00, 0xFF, 150000, 53,
         0xfc0e073720018317ull},
        {"S0", 2, 777, 0xAA, 0xAA, 200000, 7, 0x378d54f932226b80ull},
        {"H1", 0, 12345, 0xFF, 0x00, 180000, 2801,
         0x63cc3707e6c85061ull},
        {"M0", 3, 4096, 0xAA, 0x55, 300000, 4299,
         0x1a784f526c30f7aeull},
    };
    for (const Case &c : cases) {
        const auto &spec = moduleByLabel(c.label);
        auto sa = std::make_shared<SubarrayMap>(spec);
        auto model =
            std::make_shared<fault::VulnerabilityModel>(spec, sa);
        DramDevice dev(spec, sa, model, 7);
        bender::TestSession session(dev);

        const auto aggrs = session.aggressorRowsOf(c.victim);
        session.initRow(c.bank, c.victim, c.victimFill);
        for (uint32_t a : aggrs)
            session.initRow(c.bank, a, c.aggrFill);
        for (uint32_t a : aggrs)
            dev.hammer(c.bank, a, c.hammers, dev.timing().tRAS, 0);

        const auto bytes = dev.readRow(c.bank, c.victim);
        HashStream digest;
        uint64_t flips = 0;
        for (uint32_t i = 0; i < bytes.size(); ++i) {
            const uint8_t diff = bytes[i] ^ c.victimFill;
            for (int b = 0; b < 8; ++b)
                if ((diff >> b) & 1) {
                    digest.mix(uint64_t(i) * 8 + b);
                    ++flips;
                }
        }
        EXPECT_EQ(flips, c.flips) << c.label << " row " << c.victim;
        EXPECT_EQ(digest.value(), c.digest)
            << c.label << " row " << c.victim;
        EXPECT_EQ(dev.stats().bitflipsInjected, c.flips)
            << c.label << " row " << c.victim;
    }
}

} // namespace
} // namespace svard::dram
