/**
 * @file
 * Tests for the temporal-drift robustness layer: the drift-model and
 * recalibration-policy grammars, the deterministic DriftField
 * trajectory, the DriftingModel device decorator (stale-profile
 * escapes at the device level), the pure per-cell drift evaluator,
 * and the sweep-axis plumbing — degenerate equivalence with the
 * static path (byte-identical CSV at 1 and 4 threads), cache resume,
 * kill drills at the recal.apply/recal.write fault points, and the
 * manifest/heartbeat drift counters.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <sys/wait.h>
#include <unistd.h>

#include "bender/test_session.h"
#include "core/recal.h"
#include "core/svard.h"
#include "dram/device.h"
#include "dram/module_spec.h"
#include "engine/drift_eval.h"
#include "engine/runner.h"
#include "fault/drift.h"
#include "fault/vuln_model.h"
#include "fault_inject/fault_inject.h"
#include "io/result_sink.h"
#include "io/sweep_cache.h"
#include "obs/manifest.h"
#include "obs/progress.h"
#include "sim/workload.h"

namespace svard {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "svard_drift_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// -----------------------------------------------------------------
// Grammar: drift models and recalibration policies
// -----------------------------------------------------------------

TEST(DriftGrammar, ParseCanonicalizesAndRoundTrips)
{
    EXPECT_EQ(fault::DriftModelSpec::parse("none").name(), "none");
    EXPECT_EQ(fault::DriftModelSpec::parse("aging").name(),
              "aging:64");
    EXPECT_EQ(fault::DriftModelSpec::parse("aging:16").name(),
              "aging:16");
    EXPECT_EQ(fault::DriftModelSpec::parse("thermal").name(),
              "thermal:10:32");
    EXPECT_EQ(fault::DriftModelSpec::parse("thermal:5").name(),
              "thermal:5:32");
    EXPECT_EQ(
        fault::DriftModelSpec::parse("thermal:5:8+aging:16").name(),
        "aging:16+thermal:5:8");
    // Canonical names are fixed points.
    for (const char *m :
         {"aging:16", "thermal:5:8", "aging:64+thermal:10:32"})
        EXPECT_EQ(fault::DriftModelSpec::parse(m).name(), m);
}

TEST(DriftGrammar, RejectsMalformedModels)
{
    for (const char *bad :
         {"", "wearout", "aging:0", "aging:1:2", "thermal:-3",
          "thermal:5:8:9", "aging+aging", "none+aging", "aging:x"})
        EXPECT_THROW(fault::DriftModelSpec::parse(bad),
                     std::invalid_argument)
            << bad;
}

TEST(RecalGrammar, ParseCanonicalizesAndRoundTrips)
{
    EXPECT_EQ(core::RecalPolicy::parse("none").name(), "none");
    EXPECT_EQ(core::RecalPolicy::parse("periodic:8").name(),
              "periodic:8");
    EXPECT_EQ(core::RecalPolicy::parse("reactive:4").name(),
              "reactive:4");
    EXPECT_EQ(core::RecalPolicy::parse("margin:0.1").name(),
              "margin:0.1");
    EXPECT_DOUBLE_EQ(
        core::RecalPolicy::parse("margin:0.25").extraGuardband(),
        0.25);
    EXPECT_DOUBLE_EQ(
        core::RecalPolicy::parse("periodic:8").extraGuardband(), 0.0);
}

TEST(RecalGrammar, RejectsMalformedPolicies)
{
    for (const char *bad :
         {"", "sometimes", "none:1", "periodic", "periodic:0",
          "periodic:1.5", "reactive:-2", "margin:0", "margin:1.5",
          "margin:x"})
        EXPECT_THROW(core::RecalPolicy::parse(bad),
                     std::invalid_argument)
            << bad;
}

TEST(RecalGrammar, DueSemantics)
{
    const auto periodic = core::RecalPolicy::parse("periodic:4");
    EXPECT_FALSE(periodic.due(1, 0));
    EXPECT_TRUE(periodic.due(4, 0));
    EXPECT_TRUE(periodic.due(8, 0));
    const auto reactive = core::RecalPolicy::parse("reactive:3");
    EXPECT_FALSE(reactive.due(5, 2));
    EXPECT_TRUE(reactive.due(5, 3));
    EXPECT_FALSE(core::RecalPolicy::parse("margin:0.1").due(4, 100));
    EXPECT_FALSE(core::RecalPolicy{}.due(4, 100));
}

// -----------------------------------------------------------------
// DriftField: deterministic trajectory
// -----------------------------------------------------------------

TEST(DriftField, EpochZeroIsExactlyCalibration)
{
    const auto spec =
        fault::DriftModelSpec::parse("aging:8+thermal:10:4");
    const fault::DriftField field(spec, 99, 8);
    for (uint32_t b = 0; b < 4; ++b)
        for (uint32_t r = 0; r < 64; r += 7)
            EXPECT_EQ(field.factor(b, r, 32 * 1024, 0), 1.0);
}

TEST(DriftField, TrajectoryIsDeterministicAndBounded)
{
    const auto spec =
        fault::DriftModelSpec::parse("aging:8+thermal:10:4");
    const fault::DriftField a(spec, 1234, 8);
    const fault::DriftField b(spec, 1234, 8);
    const fault::DriftField other(spec, 1235, 8);
    bool seed_matters = false;
    for (uint32_t e = 0; e <= 8; ++e)
        for (uint32_t r = 0; r < 256; r += 13) {
            const double fa = a.factor(1, r, 32 * 1024, e);
            EXPECT_EQ(fa, b.factor(1, r, 32 * 1024, e));
            EXPECT_GT(fa, 0.0);
            EXPECT_LE(fa, 4.0);
            if (fa != other.factor(1, r, 32 * 1024, e))
                seed_matters = true;
        }
    EXPECT_TRUE(seed_matters);
}

TEST(DriftField, ThermalScheduleSettlesAroundCalibration)
{
    const auto spec = fault::DriftModelSpec::parse("thermal:10:4");
    const fault::DriftField field(spec, 7, 8);
    EXPECT_NEAR(field.temperatureAt(0), fault::DriftField::kCalibTempC,
                0.6);
    for (uint32_t e = 0; e <= 8; ++e) {
        EXPECT_GT(field.temperatureAt(e),
                  fault::DriftField::kCalibTempC - 11.0);
        EXPECT_LT(field.temperatureAt(e),
                  fault::DriftField::kCalibTempC + 11.0);
    }
    // The sinusoid actually moves the operating point.
    EXPECT_GT(field.temperatureAt(1),
              fault::DriftField::kCalibTempC + 5.0);
}

// -----------------------------------------------------------------
// DriftingModel against the behavioral device
// -----------------------------------------------------------------

TEST(DriftingModel, ExposesCurrentHcFirstWhileCalibrationGoesStale)
{
    const dram::ModuleSpec &spec = dram::moduleByLabel("S2");
    auto subarrays = std::make_shared<dram::SubarrayMap>(spec);
    auto inner = std::make_shared<fault::VulnerabilityModel>(
        spec, subarrays);
    auto drifting = std::make_shared<fault::DriftingModel>(
        inner, fault::DriftModelSpec::parse("thermal:40:4"), 21, 4);
    dram::DramDevice device(spec, subarrays, drifting);
    bender::TestSession session(device);

    const uint32_t bank = 1;
    uint32_t victim = UINT32_MAX;
    for (uint32_t r = 0; r < 8192 && victim == UINT32_MAX; ++r)
        if (session.aggressorRowsOf(r).size() == 2)
            victim = r;
    ASSERT_NE(victim, UINT32_MAX);
    const auto aggr = session.aggressorRowsOf(victim);
    const uint32_t phys = device.mapping().toPhysical(victim);

    const double cal_hc = inner->hcFirst(bank, phys);
    EXPECT_EQ(drifting->hcFirst(bank, phys), cal_hc);

    // Epoch 1 sits at the hot peak of the 4-epoch sinusoid: every
    // row's HC_first must have dropped below its calibration value.
    drifting->setEpoch(1);
    device.invalidateModelMemo(); // the device memoizes hcFirst
    ASSERT_GT(drifting->field().temperatureAt(1),
              drifting->field().temperatureAt(0) + 20.0);
    const double hot_hc = drifting->hcFirst(bank, phys);
    EXPECT_LT(hot_hc, cal_hc);
    EXPECT_GT(hot_hc, 0.2 * cal_hc);
    // thermal:40 at sensitivity in [0.5, 1.5) lands the factor in
    // (0.76, 0.92]; the 0.95-step search below needs f < 0.94.
    const double f = hot_hc / cal_hc;
    ASSERT_LT(f, 0.94) << "thermal drift too weak for this drill";
    drifting->setEpoch(0);
    device.invalidateModelMemo();

    // Device-level stale-profile escape: find the largest hammer
    // count the calibrated module survives, then replay the identical
    // attack at the hot epoch — the same count must now flip bits,
    // because the device exposes the *current* HC_first while any
    // defense profile captured at calibration time is stale.
    auto flips_at = [&](uint64_t hammers) {
        const auto m = session.measureBer(
            bank, victim, aggr[0], aggr[1],
            fault::DataPattern::RowStripe, hammers,
            36 * dram::kPsPerNs);
        return m.flippedBits;
    };
    uint64_t h = static_cast<uint64_t>(2.0 * cal_hc);
    int guard = 0;
    while (flips_at(h) == 0 && ++guard < 4)
        h *= 2; // pattern effects can push the flip point above 2x
    ASSERT_LT(guard, 4) << "no hammer count flips this victim";
    guard = 0;
    while (flips_at(h) > 0 && ++guard < 120)
        h = static_cast<uint64_t>(h * 0.95);
    ASSERT_LT(guard, 120);
    ASSERT_GT(h, 0u);
    EXPECT_EQ(flips_at(h), 0u);

    drifting->setEpoch(1);
    device.invalidateModelMemo();
    EXPECT_GT(flips_at(h), 0u)
        << "drifted chip must flip where the calibrated one held";
}

// -----------------------------------------------------------------
// ThresholdProvider calibration state + guardband
// -----------------------------------------------------------------

TEST(ThresholdProvider, GuardbandTightensEnforcedThreshold)
{
    core::UniformThreshold provider(1000.0, 4096);
    EXPECT_EQ(provider.calibrationEpoch(), 0u);
    EXPECT_DOUBLE_EQ(provider.guardband(), 0.0);
    EXPECT_DOUBLE_EQ(provider.enforcedThreshold(0, 7), 1000.0);

    provider.setCalibration(5, 0.1);
    EXPECT_EQ(provider.calibrationEpoch(), 5u);
    EXPECT_DOUBLE_EQ(provider.guardband(), 0.1);
    EXPECT_DOUBLE_EQ(provider.enforcedThreshold(0, 7), 900.0);
    // The raw victim threshold is untouched: the guardband is an
    // enforcement-side margin, not a profile rewrite.
    EXPECT_DOUBLE_EQ(provider.victimThreshold(0, 7), 1000.0);
}

// -----------------------------------------------------------------
// The pure per-cell drift evaluator
// -----------------------------------------------------------------

engine::DriftEvalInput
evalInput(const char *model, const char *policy)
{
    engine::DriftEvalInput in;
    in.model = fault::DriftModelSpec::parse(model);
    in.policy = core::RecalPolicy::parse(policy);
    in.epochs = 8;
    in.guardband = 0.02;
    in.seed = 0xD21F7;
    in.banks = 4;
    in.rowsPerBank = 1024;
    in.tRcPs = 46250.0;
    in.tRefwPs = 64e9;
    return in;
}

TEST(DriftEval, PureAndDeterministic)
{
    const auto in = evalInput("aging:8+thermal:10:4", "periodic:4");
    const auto a = engine::evaluateDrift(in);
    const auto b = engine::evaluateDrift(in);
    EXPECT_EQ(a.escapes, b.escapes);
    EXPECT_EQ(a.recalibrations, b.recalibrations);
    EXPECT_EQ(a.escapeRate, b.escapeRate);
    EXPECT_EQ(a.recalCost, b.recalCost);
}

TEST(DriftEval, ZeroEpochsIsTheStaticPath)
{
    auto in = evalInput("aging:8", "periodic:4");
    in.epochs = 0;
    const auto m = engine::evaluateDrift(in);
    EXPECT_EQ(m.escapes, 0u);
    EXPECT_EQ(m.recalibrations, 0u);
    EXPECT_EQ(m.escapeRate, 0.0);
    EXPECT_EQ(m.recalCost, 0.0);
}

TEST(DriftEval, AgingEscapesAndPeriodicRecalCount)
{
    const auto none = engine::evaluateDrift(evalInput("aging:8", "none"));
    EXPECT_GT(none.escapes, 0u) << "aging drops must escape a 2% "
                                   "guardband";
    EXPECT_EQ(none.recalibrations, 0u);
    EXPECT_EQ(none.recalCost, 0.0);
    EXPECT_GT(none.escapeRate, 0.0);
    EXPECT_LE(none.escapeRate, 1.0);

    const auto periodic =
        engine::evaluateDrift(evalInput("aging:8", "periodic:4"));
    EXPECT_EQ(periodic.recalibrations, 2u); // epochs 4 and 8
    EXPECT_GT(periodic.recalCost, 0.0);
    EXPECT_LE(periodic.recalCost, engine::kDriftMaxRecalDuty);
    EXPECT_LT(periodic.escapes, none.escapes)
        << "recalibrating must shed stale-profile escapes";
}

TEST(DriftEval, ReactiveAndMarginPoliciesReduceEscapes)
{
    const auto none = engine::evaluateDrift(evalInput("aging:8", "none"));
    const auto reactive =
        engine::evaluateDrift(evalInput("aging:8", "reactive:1"));
    EXPECT_GT(reactive.recalibrations, 0u);
    EXPECT_LT(reactive.escapes, none.escapes);

    // A 30% margin swallows the one-step aging drop entirely, for
    // zero recalibration cost.
    const auto margin =
        engine::evaluateDrift(evalInput("aging:8", "margin:0.3"));
    EXPECT_EQ(margin.escapes, 0u);
    EXPECT_EQ(margin.recalibrations, 0u);
    EXPECT_EQ(margin.recalCost, 0.0);
}

// -----------------------------------------------------------------
// Sweep axis: degenerate equivalence, thread/cache invariance,
// kill drills, manifest and heartbeat counters
// -----------------------------------------------------------------

engine::SweepSpec
driftSweepSpec(unsigned threads)
{
    engine::SweepSpec spec;
    spec.config.cores = 4;
    spec.defenses = {"para"};
    spec.thresholds = {128.0};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S0")};
    spec.mixes = sim::workloadMixes(2, spec.config.cores);
    spec.requestsPerCore = 400;
    spec.threads = threads;
    return spec;
}

engine::DriftSpec
driftEntry(const char *model, const char *policy, uint32_t epochs = 8,
           double guardband = 0.02)
{
    engine::DriftSpec d;
    d.model = model;
    d.policy = policy;
    d.epochs = epochs;
    d.guardband = guardband;
    return d;
}

/** The 3-entry drift axis the engine tests sweep: the static entry
 *  plus an aging cell without and with recalibration. 12 cells. */
engine::SweepSpec
driftAxisSpec(unsigned threads)
{
    engine::SweepSpec spec = driftSweepSpec(threads);
    spec.drifts = {engine::DriftSpec{}, driftEntry("aging:8", "none"),
                   driftEntry("aging:8", "periodic:4")};
    return spec;
}

TEST(DriftSweep, DegenerateAxisIsByteIdenticalToStaticPath)
{
    // An explicit all-static drift entry must reproduce the implicit
    // no-drift spec exactly: same cell fingerprints, same seeds, and
    // byte-identical CSV at 1 and 4 threads.
    std::vector<std::pair<uint64_t, uint64_t>> keys[2];
    std::string csv[2][2];
    for (int v = 0; v < 2; ++v) {
        engine::ExperimentRunner probe([&] {
            engine::SweepSpec s = driftSweepSpec(1);
            if (v == 1)
                s.drifts = {engine::DriftSpec{}};
            return s;
        }());
        probe.prepareCells();
        for (const auto &c : probe.resolvedCells())
            keys[v].emplace_back(c.seed, c.fingerprint);

        for (int t = 0; t < 2; ++t) {
            const std::string path =
                tmpPath("degen_" + std::to_string(v) + "_" +
                        std::to_string(t) + ".csv");
            engine::SweepSpec s = driftSweepSpec(t == 0 ? 1 : 4);
            if (v == 1)
                s.drifts = {engine::DriftSpec{}};
            s.sink = std::make_shared<io::CsvSink>(path);
            engine::ExperimentRunner runner(std::move(s));
            runner.run();
            csv[v][t] = slurp(path);
        }
    }
    ASSERT_EQ(keys[0].size(), 4u);
    EXPECT_EQ(keys[0], keys[1]);
    EXPECT_EQ(csv[0][0], csv[0][1]) << "static path thread variance";
    EXPECT_EQ(csv[1][0], csv[1][1]) << "degenerate axis thread variance";
    EXPECT_EQ(csv[0][0], csv[1][0])
        << "explicit static drift entry must not change a single byte";
}

TEST(DriftSweep, ThreadCountAndCacheResumeAreByteIdentical)
{
    const std::string ref_csv = tmpPath("axis_ref.csv");
    const std::string cache_path = tmpPath("axis.cache");
    const std::string hot_csv = tmpPath("axis_hot.csv");
    const std::string manifest = tmpPath("axis.manifest.json");
    std::remove(cache_path.c_str());

    engine::SweepSpec ref_spec = driftAxisSpec(1);
    ref_spec.sink = std::make_shared<io::CsvSink>(ref_csv);
    engine::ExperimentRunner ref(std::move(ref_spec));
    ref.run();
    ASSERT_EQ(ref.executedCells(), 12u);

    engine::SweepSpec cold_spec = driftAxisSpec(4);
    cold_spec.cache = std::make_shared<io::SweepCache>(cache_path);
    cold_spec.manifestPath = manifest;
    engine::ExperimentRunner cold(std::move(cold_spec));
    cold.run();
    EXPECT_EQ(cold.executedCells(), 12u);
    EXPECT_GT(cold.watchdog().escapes(), 0u);
    EXPECT_GT(cold.watchdog().recalibrations(), 0u);

    // Hot resume at yet another thread count: zero executions and the
    // byte-identical table, drift columns included.
    engine::SweepSpec hot_spec = driftAxisSpec(2);
    hot_spec.cache = std::make_shared<io::SweepCache>(cache_path);
    hot_spec.sink = std::make_shared<io::CsvSink>(hot_csv);
    engine::ExperimentRunner hot(std::move(hot_spec));
    hot.run();
    EXPECT_EQ(hot.executedCells(), 0u);
    EXPECT_EQ(hot.cachedCells(), 12u);
    EXPECT_EQ(slurp(ref_csv), slurp(hot_csv));

    // The streamed CSV round-trips with the drift identity and
    // metrics of every cell.
    const auto rows = io::readCsvResults(ref_csv);
    ASSERT_EQ(rows.size(), 12u);
    uint64_t escapes = 0, recals = 0;
    for (const auto &r : rows) {
        if (r.driftPolicy == "periodic:4") {
            EXPECT_EQ(r.driftModel, "aging:8");
            EXPECT_EQ(r.driftEpochs, 8u);
            EXPECT_DOUBLE_EQ(r.guardband, 0.02);
            EXPECT_EQ(r.drift.recalibrations, 2u);
            EXPECT_GT(r.drift.recalCost, 0.0);
        } else if (r.driftModel == "none") {
            EXPECT_EQ(r.drift.escapes, 0u);
            EXPECT_EQ(r.drift.recalCost, 0.0);
        }
        escapes += r.drift.escapes;
        recals += r.drift.recalibrations;
    }
    EXPECT_EQ(escapes, cold.watchdog().escapes());
    EXPECT_EQ(recals, cold.watchdog().recalibrations());

    // Satellite: the run manifest records the drift axis and totals.
    obs::RunManifest m;
    std::string err;
    ASSERT_TRUE(obs::readManifest(manifest, &m, &err)) << err;
    ASSERT_EQ(m.driftPolicies.size(), 3u);
    EXPECT_EQ(m.driftPolicies[0], "none");
    EXPECT_EQ(m.driftPolicies[1], "aging:8/none/e8/g0.02");
    EXPECT_EQ(m.driftPolicies[2], "aging:8/periodic:4/e8/g0.02");
    EXPECT_EQ(m.escapes, escapes);
    EXPECT_EQ(m.recalibrations, recals);
}

TEST(DriftSweep, HeartbeatRecordsCarryDriftCounters)
{
    const std::string beat = tmpPath("drift.heartbeat.jsonl");
    std::remove(beat.c_str());
    obs::setHeartbeatPath(beat);
    {
        engine::ExperimentRunner runner(driftAxisSpec(2));
        runner.run();
    }
    obs::setHeartbeatPath("");
    const std::string text = slurp(beat);
    EXPECT_NE(text.find("\"escapes\": "), std::string::npos);
    EXPECT_NE(text.find("\"recalibrations\": "), std::string::npos);
    // The final sweep heartbeat reports nonzero escapes (the axis
    // includes an un-recalibrated aging cell).
    bool nonzero = false;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line))
        if (line.find("\"escapes\": 0") == std::string::npos &&
            line.find("\"escapes\": ") != std::string::npos)
            nonzero = true;
    EXPECT_TRUE(nonzero);
}

/** Run the drift-axis sweep into `cache_path` under `fault`, dying at
 *  the injected point. Forked child: _Exit codes only. */
void
runKilledChild(const std::string &cache_path, const std::string &fault)
{
    try {
        faults::configure(fault);
        engine::SweepSpec spec = driftAxisSpec(1);
        spec.cache = std::make_shared<io::SweepCache>(cache_path);
        engine::ExperimentRunner runner(std::move(spec));
        runner.run();
    } catch (...) {
        ::_Exit(3);
    }
    ::_Exit(0); // fault did not fire
}

class DriftKillDrill : public ::testing::TestWithParam<const char *>
{
  protected:
    void TearDown() override { faults::reset(); }
};

TEST_P(DriftKillDrill, KilledSweepResumesByteIdentical)
{
    if (!faults::compiled())
        GTEST_SKIP() << "fault harness compiled out";
    const std::string tag =
        std::string(GetParam()).find("apply") != std::string::npos
            ? "apply"
            : "write";
    const std::string ref_csv = tmpPath("kill_" + tag + "_ref.csv");
    const std::string cache_path = tmpPath("kill_" + tag + ".cache");
    const std::string res_csv = tmpPath("kill_" + tag + "_res.csv");
    std::remove(cache_path.c_str());

    engine::SweepSpec ref_spec = driftAxisSpec(1);
    ref_spec.sink = std::make_shared<io::CsvSink>(ref_csv);
    engine::ExperimentRunner ref(std::move(ref_spec));
    ref.run();

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0)
        runKilledChild(cache_path, GetParam()); // never returns
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137)
        << "the injected kill must fire mid-sweep";

    // Resume from whatever the killed run checkpointed; the finished
    // table must match the uninterrupted reference byte for byte.
    engine::SweepSpec res_spec = driftAxisSpec(4);
    res_spec.cache = std::make_shared<io::SweepCache>(cache_path);
    res_spec.sink = std::make_shared<io::CsvSink>(res_csv);
    engine::ExperimentRunner resumed(std::move(res_spec));
    resumed.run();
    EXPECT_LT(resumed.executedCells(), 12u)
        << "the kill landed after at least one stored cell";
    EXPECT_EQ(slurp(ref_csv), slurp(res_csv));
}

INSTANTIATE_TEST_SUITE_P(RecalFaultPoints, DriftKillDrill,
                         ::testing::Values("recal.apply:kill@1",
                                           "recal.write:kill@2"));

} // namespace
} // namespace svard
