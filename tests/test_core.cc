/**
 * @file
 * Tests for the Svärd core: vulnerability profiles (binning, safety of
 * bin bounds, scaling) and the threshold providers defenses consume.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/svard.h"
#include "core/vuln_profile.h"
#include "dram/rowmap.h"

namespace svard::core {
namespace {

std::shared_ptr<fault::VulnerabilityModel>
makeModel(const std::string &label)
{
    const auto &spec = dram::moduleByLabel(label);
    auto map = std::make_shared<dram::SubarrayMap>(spec);
    return std::make_shared<fault::VulnerabilityModel>(spec, map);
}

TEST(VulnProfile, BinBoundIsSafeLowerBoundOfTrueHcFirst)
{
    auto model = makeModel("S0");
    const auto prof = VulnProfile::fromModel(*model);
    // Profile and model both speak physical rows.
    for (uint32_t bank : {0u, 2u}) {
        for (uint32_t row = 0; row < 8192; row += 5) {
            const double bound = prof.thresholdOf(bank, row);
            const double truth = model->hcFirst(bank, row);
            EXPECT_LT(bound, truth)
                << "bank " << bank << " row " << row;
        }
    }
}

TEST(VulnProfile, MinThresholdBelowModuleMinimum)
{
    for (const char *label : {"H1", "M0", "S0"}) {
        auto model = makeModel(label);
        const auto prof = VulnProfile::fromModel(*model);
        EXPECT_LT(prof.minThreshold(), model->spec().hcFirstMin)
            << label;
        EXPECT_GT(prof.maxThreshold(), prof.minThreshold()) << label;
    }
}

TEST(VulnProfile, OccupancySumsToOne)
{
    auto model = makeModel("M0");
    const auto prof = VulnProfile::fromModel(*model);
    double sum = 0.0;
    for (double f : prof.binOccupancy())
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(VulnProfile, StrongModuleProfileSkewsToStrongBins)
{
    // M3 (min 56K) should concentrate rows in high bins; M0 (min 8K,
    // max 40K) in lower ones.
    auto m3 = makeModel("M3");
    const auto p3 = VulnProfile::fromModel(*m3);
    const auto occ3 = p3.binOccupancy();
    double weak_mass = 0.0;
    for (uint32_t b = 0; b < p3.numBins(); ++b)
        if (p3.binBounds()[b] < 40.0 * 1024.0)
            weak_mass += occ3[b];
    EXPECT_LT(weak_mass, 0.05);
}

class BinCountP : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(BinCountP, MergingBinsStaysSafeAndFits)
{
    auto model = makeModel("H0");
    const auto prof = VulnProfile::fromModel(*model, GetParam());
    EXPECT_LE(prof.numBins(), GetParam());
    for (uint32_t row = 0; row < 4096; row += 7) {
        EXPECT_LT(prof.thresholdOf(0, row), model->hcFirst(0, row));
    }
    // Fewer bins -> coarser (never higher) per-row thresholds.
    const auto fine = VulnProfile::fromModel(*model, 14);
    for (uint32_t row = 0; row < 4096; row += 7)
        EXPECT_LE(prof.thresholdOf(0, row), fine.thresholdOf(0, row));
}

INSTANTIATE_TEST_SUITE_P(BinCounts, BinCountP,
                         ::testing::Values(2u, 4u, 8u, 14u, 16u));

TEST(VulnProfile, ScaledToPreservesShape)
{
    auto model = makeModel("S0");
    const auto prof = VulnProfile::fromModel(*model);
    const auto scaled = prof.scaledTo(64.0);
    EXPECT_DOUBLE_EQ(scaled.minThreshold(), 64.0);
    const double factor = 64.0 / prof.minThreshold();
    for (uint32_t b = 0; b < prof.numBins(); ++b)
        EXPECT_NEAR(scaled.binBounds()[b],
                    prof.binBounds()[b] * factor, 1e-9);
    // Bin assignments unchanged.
    for (uint32_t row = 0; row < 2048; ++row)
        EXPECT_EQ(scaled.binOf(0, row), prof.binOf(0, row));
}

TEST(VulnProfile, MetadataBitsMatchesFourBitsPerRow)
{
    auto model = makeModel("S0"); // 16 banks x 64K rows
    const auto prof = VulnProfile::fromModel(*model, 14);
    // 14 bins -> 4 bits per row.
    EXPECT_EQ(prof.metadataBits(),
              4ull * 16ull * 64ull * 1024ull);
}

TEST(Svard, LookupMatchesProfileAndCounts)
{
    auto model = makeModel("M0");
    auto prof = std::make_shared<VulnProfile>(
        VulnProfile::fromModel(*model));
    Svard svard(prof);
    EXPECT_DOUBLE_EQ(svard.victimThreshold(3, 77),
                     prof->thresholdOf(3, 77));
    EXPECT_DOUBLE_EQ(svard.worstCase(), prof->minThreshold());
    EXPECT_EQ(svard.lookups(), 1u);
}

TEST(Svard, AggressorBudgetIsMinOfNeighbors)
{
    auto model = makeModel("S0");
    auto prof = std::make_shared<VulnProfile>(
        VulnProfile::fromModel(*model));
    Svard svard(prof);
    for (uint32_t row = 1; row < 1000; row += 13) {
        const double budget = svard.aggressorBudget(0, row);
        const double lo = prof->thresholdOf(0, row - 1);
        const double hi = prof->thresholdOf(0, row + 1);
        EXPECT_DOUBLE_EQ(budget, std::min(lo, hi));
    }
}

TEST(Svard, EdgeRowBudgetUsesSingleNeighbor)
{
    auto model = makeModel("S0");
    auto prof = std::make_shared<VulnProfile>(
        VulnProfile::fromModel(*model));
    Svard svard(prof);
    EXPECT_DOUBLE_EQ(svard.aggressorBudget(0, 0),
                     prof->thresholdOf(0, 1));
    const uint32_t last = prof->rowsPerBank() - 1;
    EXPECT_DOUBLE_EQ(svard.aggressorBudget(0, last),
                     prof->thresholdOf(0, last - 1));
}

TEST(ThresholdProvider, AggressorBudgetClampsAtBothArrayEdges)
{
    // Hand-built profile so every neighbor has a distinct threshold:
    // a wraparound or out-of-bounds neighbor lookup at either edge
    // would change the budget observably.
    VulnProfile prof("edges", 1, 8, {10.0, 100.0, 1000.0});
    prof.setBin(0, 0, 0);  // 10
    prof.setBin(0, 1, 2);  // 1000
    prof.setBin(0, 2, 1);  // 100
    prof.setBin(0, 3, 2);  // 1000
    prof.setBin(0, 6, 1);  // 100
    prof.setBin(0, 7, 0);  // 10
    Svard svard(std::make_shared<VulnProfile>(prof));

    // Row 0 disturbs only row 1 (no row "-1" to consult).
    EXPECT_DOUBLE_EQ(svard.aggressorBudget(0, 0), 1000.0);
    // The last row disturbs only rowsPerBank-2.
    EXPECT_DOUBLE_EQ(svard.aggressorBudget(0, 7), 100.0);
    // Interior rows take the weaker of both neighbors.
    EXPECT_DOUBLE_EQ(svard.aggressorBudget(0, 1), 10.0);
    EXPECT_DOUBLE_EQ(svard.aggressorBudget(0, 2), 1000.0);
}

TEST(ThresholdProvider, ProviderBankCountsExposeProfileGeometry)
{
    VulnProfile prof("geom", 4, 16, {32.0});
    Svard svard(std::make_shared<VulnProfile>(prof));
    EXPECT_EQ(svard.banks(), 4u);
    // Uniform providers are bank-agnostic (0 = unconstrained).
    UniformThreshold uni(64.0, 16);
    EXPECT_EQ(uni.banks(), 0u);
}

TEST(ThresholdProvider, VictimThresholdBatchMatchesScalar)
{
    auto model = makeModel("M0");
    auto prof = std::make_shared<VulnProfile>(
        VulnProfile::fromModel(*model));
    Svard svard(prof);           // dense override
    UniformThreshold uni(777.5, prof->rowsPerBank()); // default impl
    const uint32_t runs[][2] = {{0, 64}, {100, 37}, {5000, 1}};
    for (const auto &run : runs) {
        std::vector<double> got(run[1]);
        svard.victimThresholdBatch(2, run[0], run[1], got.data());
        for (uint32_t i = 0; i < run[1]; ++i)
            EXPECT_EQ(got[i], svard.victimThreshold(2, run[0] + i))
                << run[0] + i;
        uni.victimThresholdBatch(0, run[0], run[1], got.data());
        for (uint32_t i = 0; i < run[1]; ++i)
            EXPECT_EQ(got[i], 777.5) << run[0] + i;
    }
}

TEST(ThresholdProvider, BatchMemoFillMatchesLazyFillExactly)
{
    // Two providers over the same profile: one memo filled lazily
    // (aggressorBudgetMemo per row), one warmed by the batch fill.
    // Every budget must agree EXACTLY — the vector neighbor-min fold
    // is the same double math as the scalar path. Runs cover both
    // array edges (sentinel-clamped), an interior stretch, and the
    // beyond-the-end clamp.
    auto model = makeModel("S0");
    auto prof = std::make_shared<VulnProfile>(
        VulnProfile::fromModel(*model));
    Svard lazy(prof), batch(prof);
    const uint32_t rows = prof->rowsPerBank();
    const uint32_t runs[][2] = {
        {0, 128}, {1000, 37}, {rows - 64, 64}, {rows - 10, 100}};
    for (const auto &run : runs) {
        const uint32_t bank = 1;
        batch.aggressorBudgetBatchMemo(bank, run[0], run[1]);
        const uint32_t end =
            std::min(rows, run[0] + run[1]);
        for (uint32_t row = run[0]; row < end; ++row)
            EXPECT_EQ(batch.aggressorBudgetMemo(bank, row),
                      lazy.aggressorBudgetMemo(bank, row))
                << "row " << row;
    }
    // Degenerate calls must be safe no-ops.
    batch.aggressorBudgetBatchMemo(0, rows + 5, 10);
    batch.aggressorBudgetBatchMemo(0, 5, 0);

    // The uniform baseline takes the default (loop) batch path.
    UniformThreshold ulazy(444.0, 256), ubatch(444.0, 256);
    ubatch.aggressorBudgetBatchMemo(0, 0, 256);
    for (uint32_t row = 0; row < 256; ++row)
        EXPECT_EQ(ubatch.aggressorBudgetMemo(0, row),
                  ulazy.aggressorBudgetMemo(0, row))
            << "row " << row;
}

TEST(UniformThreshold, IsTheNoSvardBaseline)
{
    UniformThreshold uni(4096.0, 65536);
    EXPECT_DOUBLE_EQ(uni.victimThreshold(0, 0), 4096.0);
    EXPECT_DOUBLE_EQ(uni.victimThreshold(15, 65535), 4096.0);
    EXPECT_DOUBLE_EQ(uni.aggressorBudget(7, 1234), 4096.0);
    EXPECT_DOUBLE_EQ(uni.worstCase(), 4096.0);
}

TEST(Svard, SvardNeverBelowNoSvardBaseline)
{
    // The whole point: Svärd thresholds are >= the worst-case uniform
    // threshold everywhere, so defenses act no more aggressively than
    // the baseline on any row.
    auto model = makeModel("H1");
    auto prof = std::make_shared<VulnProfile>(
        VulnProfile::fromModel(*model));
    Svard svard(prof);
    UniformThreshold uni(prof->minThreshold(), prof->rowsPerBank());
    for (uint32_t row = 0; row < 4096; ++row)
        EXPECT_GE(svard.victimThreshold(0, row),
                  uni.victimThreshold(0, row));
}

} // namespace
} // namespace svard::core
