/**
 * @file
 * Tests for the memory-system simulator: MOP address mapping, workload
 * generation, core-model window semantics, the controller's timing and
 * scheduling behaviour, and the end-to-end properties the Fig. 12/13
 * evaluation rests on (defense overhead ordering, Svärd's gains).
 */
#include <gtest/gtest.h>

#include <set>

#include "sim/addrmap.h"
#include "sim/system.h"

namespace svard::sim {
namespace {

SimConfig
smallConfig()
{
    SimConfig cfg;
    return cfg;
}

TEST(AddrMap, FieldsWithinBounds)
{
    SimConfig cfg;
    MopMapper mapper(cfg);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        const uint64_t addr = rng.next() & ((1ULL << 38) - 1);
        const auto a = mapper.map(addr);
        EXPECT_LT(a.rank, cfg.ranks);
        EXPECT_LT(a.bankGroup, cfg.bankGroups);
        EXPECT_LT(a.bank, cfg.banksPerGroup);
        EXPECT_LT(a.row, cfg.rowsPerBank);
        EXPECT_LT(a.column, cfg.blocksPerRow());
        EXPECT_LT(mapper.flatBank(a), cfg.totalBanks());
    }
}

TEST(AddrMap, ConsecutiveBlocksShareRowThenHopBanks)
{
    SimConfig cfg;
    MopMapper mapper(cfg);
    const uint64_t base = 1ULL << 30;
    const auto a0 = mapper.map(base);
    // Within the 4-block MOP run: same row, same bank.
    for (uint64_t b = 1; b < cfg.mopWidth; ++b) {
        const auto a = mapper.map(base + b * 64);
        EXPECT_EQ(a.row, a0.row);
        EXPECT_EQ(mapper.flatBank(a), mapper.flatBank(a0));
    }
    // Next run: different bank group.
    const auto a4 = mapper.map(base + cfg.mopWidth * 64);
    EXPECT_NE(a4.bankGroup, a0.bankGroup);
}

TEST(AddrMap, RowStrideIs256KiB)
{
    SimConfig cfg;
    MopMapper mapper(cfg);
    const auto a0 = mapper.map(0);
    const auto a1 = mapper.map(256 * 1024);
    EXPECT_EQ(a1.row, a0.row + 1);
    EXPECT_EQ(mapper.flatBank(a1), mapper.flatBank(a0));
}

TEST(Workload, SuiteSpansTheBehaviourSpace)
{
    const auto &suite = benchmarkSuite();
    EXPECT_GE(suite.size(), 12u);
    std::set<std::string> suites;
    double max_mpki = 0, min_mpki = 1e9;
    for (const auto &b : suite) {
        suites.insert(b.suite);
        max_mpki = std::max(max_mpki, b.mpki);
        min_mpki = std::min(min_mpki, b.mpki);
    }
    EXPECT_GE(suites.size(), 4u); // SPEC06/17, TPC, YCSB, MediaBench
    EXPECT_GT(max_mpki / min_mpki, 5.0);
}

TEST(Workload, TraceIsDeterministicAndSized)
{
    const auto &prof = benchmarkSuite()[0];
    const auto a = generateTrace(prof, 5000, 7, 1 << 20);
    const auto b = generateTrace(prof, 5000, 7, 1 << 20);
    ASSERT_EQ(a.size(), 5000u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].address, b[i].address);
        EXPECT_EQ(a[i].gap, b[i].gap);
    }
}

TEST(Workload, GapsMatchMpki)
{
    const auto &prof = benchmarkByName("ptrchase-hi"); // MPKI 26
    const auto tr = generateTrace(prof, 20000, 9, 0);
    double insts = 0;
    for (const auto &e : tr)
        insts += e.gap;
    const double mpki = 1000.0 * tr.size() / insts;
    EXPECT_NEAR(mpki / prof.mpki, 1.0, 0.15);
}

TEST(Workload, MixesAreSeededAndCover)
{
    const auto mixes = workloadMixes(120, 8, 2024);
    ASSERT_EQ(mixes.size(), 120u);
    std::set<uint32_t> used;
    for (const auto &m : mixes) {
        EXPECT_EQ(m.benchIdx.size(), 8u);
        for (uint32_t b : m.benchIdx)
            used.insert(b);
    }
    EXPECT_EQ(used.size(), benchmarkSuite().size());
    const auto again = workloadMixes(120, 8, 2024);
    EXPECT_EQ(again[17].benchIdx, mixes[17].benchIdx);
}

TEST(Workload, AdversarialTracesHaveTheRightShape)
{
    SimConfig cfg;
    MopMapper mapper(cfg);
    const auto hydra = adversarialHydraTrace(10000, 1);
    std::set<uint32_t> rows;
    for (const auto &e : hydra)
        rows.insert(mapper.map(e.address).row);
    EXPECT_GT(rows.size(), 4096u); // thrashes the 4K-entry RCC

    const auto rrs = adversarialRrsTrace(1000, 1);
    std::set<uint32_t> rrs_rows;
    for (const auto &e : rrs)
        rrs_rows.insert(mapper.map(e.address).row);
    EXPECT_EQ(rrs_rows.size(), 2u); // double-sided aggressor pair
    const auto r0 = mapper.map(rrs[0].address).row;
    const auto r1 = mapper.map(rrs[1].address).row;
    EXPECT_EQ(std::max(r0, r1) - std::min(r0, r1), 2u);
}

TEST(CoreModel, WindowBlocksOnOldReads)
{
    SimConfig cfg;
    // Two reads 200 instructions apart: the second exceeds the
    // 128-entry window while the first is outstanding -> blocked.
    std::vector<TraceEntry> tr = {{10, false, 0},
                                  {200, false, 1 << 20}};
    CoreModel core(cfg, 0, tr, 2);
    ASSERT_TRUE(core.canRelease(1000000));
    uint64_t tok1 = 0;
    core.release(1000000, &tok1);
    // Second entry is 200 insts younger than the outstanding read.
    EXPECT_FALSE(core.canRelease(100000000));
    core.onReadComplete(tok1, 2000000);
    EXPECT_TRUE(core.canRelease(100000000));
}

TEST(CoreModel, IpcApproachesIssueWidthWithoutMisses)
{
    SimConfig cfg;
    // One read then a huge gap of compute: IPC ~ issue width.
    std::vector<TraceEntry> tr = {{1000000, false, 0}};
    CoreModel core(cfg, 0, tr, 1);
    uint64_t tok = 0;
    core.release(0, &tok);
    core.onReadComplete(tok, 100000); // fast memory
    ASSERT_TRUE(core.primaryDone());
    EXPECT_NEAR(core.ipc(), cfg.issueWidth, 0.2);
}

TEST(System, SingleCoreRunsToCompletionWithSaneIpc)
{
    SimConfig cfg = smallConfig();
    std::vector<std::vector<TraceEntry>> traces;
    traces.push_back(
        generateTrace(benchmarkByName("mixed-md"), 4000, 5, 4ULL << 30));
    System sys(cfg, std::move(traces), 4000, nullptr);
    const auto res = sys.run();
    ASSERT_EQ(res.ipc.size(), 1u);
    EXPECT_GT(res.ipc[0], 0.05);
    EXPECT_LT(res.ipc[0], 4.0);
    EXPECT_GT(res.controller.reads, 2000u);
    EXPECT_GT(res.controller.activations, 0u);
}

TEST(System, EightCoresContendAndSlowDown)
{
    SimConfig cfg = smallConfig();
    MixRunner runner(cfg, 3000);
    const double alone = runner.aloneIpc(2); // ptrchase-hi

    WorkloadMix mix;
    mix.name = "all-ptrchase";
    mix.benchIdx.assign(8, 2);
    const auto m = runner.runMix(mix, DefenseKind::None, nullptr);
    // Contention: the mix cannot beat eight isolated copies, and at
    // least one core visibly slows down (pointer chasing is latency-
    // bound, so queueing shows up before bandwidth saturates).
    EXPECT_LT(m.weightedSpeedup, 7.95);
    EXPECT_GT(m.weightedSpeedup, 1.0);
    EXPECT_GT(m.maxSlowdown, 1.01);
    EXPECT_GT(alone, 0.0);
}

TEST(System, RefreshesHappen)
{
    SimConfig cfg = smallConfig();
    std::vector<std::vector<TraceEntry>> traces;
    traces.push_back(
        generateTrace(benchmarkByName("compress"), 3000, 5, 4ULL << 30));
    System sys(cfg, std::move(traces), 3000, nullptr);
    const auto res = sys.run();
    // compress is low-MPKI: the run spans many tREFI periods.
    EXPECT_GT(res.controller.refreshes, 10u);
}

// -----------------------------------------------------------------
// Defense overhead shape at a future-chip threshold (Fig. 12 core)
// -----------------------------------------------------------------

struct Fig12Fixture : public ::testing::Test
{
    Fig12Fixture() : runner(smallConfig(), 20000) {}

    double
    wsFor(DefenseKind kind, double threshold)
    {
        auto provider = std::make_shared<core::UniformThreshold>(
            threshold, runner.config().rowsPerBank);
        // Hotspot-heavy mix: high per-row activation density, the
        // regime where count-triggered defenses react within a short
        // simulated interval.
        WorkloadMix mix;
        mix.benchIdx = {16, 17, 16, 17, 16, 17, 16, 17};
        return runner.runMix(mix, kind, provider).weightedSpeedup;
    }

    MixRunner runner;
};

TEST_F(Fig12Fixture, DefenseOverheadsOrderAsInThePaper)
{
    const double base = wsFor(DefenseKind::None, 0);
    const double para = wsFor(DefenseKind::Para, 64);
    const double bh = wsFor(DefenseKind::BlockHammer, 64);
    const double hydra = wsFor(DefenseKind::Hydra, 64);
    const double aqua = wsFor(DefenseKind::Aqua, 64);
    const double rrs = wsFor(DefenseKind::Rrs, 64);

    // Everyone pays something at HC_first = 64.
    EXPECT_LT(para, base * 0.99);
    EXPECT_LT(bh, base);
    EXPECT_LT(hydra, base);
    EXPECT_LT(aqua, base);
    EXPECT_LT(rrs, base);
    // Robust paper-shape orderings (Fig. 12 at the lowest
    // thresholds): Hydra is the cheapest, BlockHammer collapses, and
    // RRS costs about twice AQUA (two-row swaps + unswaps vs. one-row
    // migration). PARA's position relative to AQUA depends on whether
    // the system is bank- or bus-bound and is recorded as a deviation
    // in EXPERIMENTS.md.
    EXPECT_GT(hydra, aqua);
    EXPECT_GT(aqua, rrs);
    EXPECT_GT(rrs, bh);
    EXPECT_GT(para, rrs);
}

TEST_F(Fig12Fixture, OverheadGrowsAsThresholdShrinks)
{
    const double hi = wsFor(DefenseKind::Para, 4096);
    const double lo = wsFor(DefenseKind::Para, 64);
    EXPECT_LT(lo, hi);
}

TEST_F(Fig12Fixture, SvardImprovesEveryDefenseAtLowThreshold)
{
    const auto &spec = dram::moduleByLabel("S0");
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    auto model = std::make_shared<fault::VulnerabilityModel>(spec, sa);
    auto prof = std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(*model));
    auto scaled = std::make_shared<core::VulnProfile>(
        prof->resampledTo(runner.config().banksPerRank(),
                          runner.config().rowsPerBank)
            .scaledTo(64.0));
    auto svard = std::make_shared<core::Svard>(scaled);
    auto uni = std::make_shared<core::UniformThreshold>(
        64.0, runner.config().rowsPerBank);

    WorkloadMix mix;
    mix.benchIdx = {16, 17, 16, 17, 16, 17, 16, 17};
    for (DefenseKind kind :
         {DefenseKind::Para, DefenseKind::BlockHammer,
          DefenseKind::Hydra, DefenseKind::Aqua, DefenseKind::Rrs}) {
        const double without =
            runner.runMix(mix, kind, uni).weightedSpeedup;
        const double with_svard =
            runner.runMix(mix, kind, svard).weightedSpeedup;
        EXPECT_GE(with_svard, without * 0.999)
            << defenseKindName(kind);
    }
}

} // namespace
} // namespace svard::sim
